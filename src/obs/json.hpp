// Minimal recursive-descent JSON parser, header-only. Exists so the trace
// validator and the obs tests can parse exported Chrome traces back
// without an external dependency; it handles general JSON (objects,
// arrays, strings with escapes, numbers, booleans, null), not just the
// subset this repo emits. Throws std::runtime_error with an offset on
// malformed input.
#pragma once

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace agebo::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member with the given key, or nullptr (object values only).
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  Value object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // UTF-8 encode (surrogate pairs unsupported; the emitter never
            // produces them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  Value string_value() {
    Value v;
    v.type = Value::Type::kString;
    v.str = parse_string();
    return v;
  }

  Value boolean() {
    Value v;
    v.type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Value{};
  }

  Value number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) fail("expected value");
    pos_ += static_cast<std::size_t>(end - begin);
    Value v;
    v.type = Value::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace agebo::obs::json
