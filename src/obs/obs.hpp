// Umbrella header for the observability subsystem (DESIGN.md §10):
//   registry.hpp — named counters / gauges / histograms, Registry::snapshot()
//   span.hpp     — OBS_SPAN scoped timers, lanes, virtual-time record_span
//   trace.hpp    — chrome://tracing JSON export
#pragma once

#include "obs/registry.hpp"  // IWYU pragma: export
#include "obs/span.hpp"      // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export
