// Chrome trace-event exporter: serializes everything the span layer has
// recorded into the chrome://tracing / Perfetto JSON format (DESIGN.md
// §10). Each distinct lane becomes one named thread row ("X" complete
// events); counter samples become "C" counter tracks (jobs in flight,
// population best). Load the file at chrome://tracing or ui.perfetto.dev.
#pragma once

#include <string>

namespace agebo::obs {

/// The trace as a JSON string (exposed for tests and tools).
std::string chrome_trace_json();

/// Write the trace to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace agebo::obs
