#include "obs/span.hpp"

#include <chrono>
#include <memory>
#include <mutex>

namespace agebo::obs {

namespace {

// Per-thread ring capacity. Coarse spans only (job attempts, epochs,
// steps, BO calls) — a 3-hour simulated campaign records a few thousand
// events, so 32k per lane leaves ample headroom before overwrite.
constexpr std::size_t kRingCapacity = 32768;

struct Ring {
  // The mutex is uncontended on the write path (one owner thread); it only
  // sees contention while the exporter drains, which is rare and cheap.
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t head = 0;  // total events ever pushed

  void push(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(std::move(event));
    } else {
      events[head % kRingCapacity] = std::move(event);
    }
    ++head;
  }
};

struct TraceStore {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<std::size_t> free_rings;
  std::vector<CounterSample> samples;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::size_t next_thread = 0;

  static TraceStore& get() {
    static TraceStore store;
    return store;
  }

  Ring* acquire_ring() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_rings.empty()) {
      const std::size_t idx = free_rings.back();
      free_rings.pop_back();
      return rings[idx].get();
    }
    rings.push_back(std::make_unique<Ring>());
    return rings.back().get();
  }

  void release_ring(Ring* ring) {
    // Events must outlive their thread (the trace is exported at the end
    // of the run), so retired rings are recycled, never freed.
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < rings.size(); ++i) {
      if (rings[i].get() == ring) {
        free_rings.push_back(i);
        return;
      }
    }
  }
};

struct TlsRing {
  Ring* ring = nullptr;
  std::string lane;
  ~TlsRing() {
    if (ring != nullptr) TraceStore::get().release_ring(ring);
  }
};

TlsRing& tls_ring() {
  thread_local TlsRing tls;
  if (tls.ring == nullptr) {
    auto& store = TraceStore::get();
    tls.ring = store.acquire_ring();
    if (tls.lane.empty()) {
      std::lock_guard<std::mutex> lock(store.mu);
      tls.lane = "thread-" + std::to_string(store.next_thread++);
    }
  }
  return tls;
}

}  // namespace

void set_thread_lane(const std::string& name) {
  TlsRing& tls = tls_ring();
  if (tls.lane != name) tls.lane = name;
}

const std::string& thread_lane() { return tls_ring().lane; }

double trace_now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       TraceStore::get().epoch)
      .count();
}

void record_span(const std::string& name, const std::string& lane,
                 double start_seconds, double duration_seconds,
                 std::vector<TraceArg> args) {
  TlsRing& tls = tls_ring();
  TraceEvent event;
  event.name = name;
  event.lane = lane.empty() ? tls.lane : lane;
  event.start_us = start_seconds * 1e6;
  event.dur_us = duration_seconds < 0.0 ? 0.0 : duration_seconds * 1e6;
  event.args = std::move(args);
  tls.ring->push(std::move(event));
}

void record_counter_sample(const std::string& track, double t_seconds,
                           double value) {
  auto& store = TraceStore::get();
  std::lock_guard<std::mutex> lock(store.mu);
  store.samples.push_back(CounterSample{track, t_seconds * 1e6, value});
}

std::vector<TraceEvent> collect_trace_events() {
  auto& store = TraceStore::get();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    // Oldest-first: once wrapped, the oldest live event sits at head % cap.
    const std::size_t n = ring->events.size();
    const std::size_t first = ring->head > n ? ring->head % kRingCapacity : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring->events[(first + i) % n]);
    }
  }
  return out;
}

std::vector<CounterSample> collect_counter_samples() {
  auto& store = TraceStore::get();
  std::lock_guard<std::mutex> lock(store.mu);
  return store.samples;
}

std::size_t trace_event_count() {
  auto& store = TraceStore::get();
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    n += ring->events.size();
  }
  return n;
}

std::size_t trace_dropped_count() {
  auto& store = TraceStore::get();
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    n += ring->head - ring->events.size();
  }
  return n;
}

void trace_reset() {
  auto& store = TraceStore::get();
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& ring : store.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->head = 0;
  }
  store.samples.clear();
  store.epoch = std::chrono::steady_clock::now();
}

ScopedSpan::ScopedSpan(const char* name, std::vector<TraceArg> args)
    : name_(name), args_(std::move(args)), start_us_(trace_now_seconds() * 1e6) {}

ScopedSpan::~ScopedSpan() {
  const double end_us = trace_now_seconds() * 1e6;
  record_span(name_, std::string(), start_us_ * 1e-6,
              (end_us - start_us_) * 1e-6, std::move(args_));
}

}  // namespace agebo::obs
