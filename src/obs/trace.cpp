#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/span.hpp"

namespace agebo::obs {

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string chrome_trace_json() {
  auto events = collect_trace_events();
  auto samples = collect_counter_samples();

  // One Chrome thread per lane; lanes sorted by name for a deterministic
  // file, and tid doubles as the sort index so related lanes group.
  std::map<std::string, int> lane_tids;
  for (const auto& e : events) lane_tids.emplace(e.lane, 0);
  int next_tid = 1;
  for (auto& [lane, tid] : lane_tids) tid = next_tid++;

  // Sort spans by (lane, start, longest-first) so enclosing spans precede
  // their children, and counter samples by (track, t).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;
            });
  std::sort(samples.begin(), samples.end(),
            [](const CounterSample& a, const CounterSample& b) {
              if (a.track != b.track) return a.track < b.track;
              return a.t_us < b.t_us;
            });

  std::ostringstream os;
  // 15 significant digits: hour-scale timestamps in microseconds (~1e10)
  // still round-trip to within 1e-5 us, well inside trace_validate's
  // nesting tolerance.
  os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  for (const auto& [lane, tid] : lane_tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    json_escape(os, lane);
    os << "}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
  }

  for (const auto& e : events) {
    sep();
    os << "{\"ph\":\"X\",\"name\":";
    json_escape(os, e.name);
    os << ",\"pid\":1,\"tid\":" << lane_tids[e.lane] << ",\"ts\":" << e.start_us
       << ",\"dur\":" << std::max(0.0, e.dur_us);
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ',';
        json_escape(os, e.args[i].key);
        os << ':';
        json_escape(os, e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  }

  for (const auto& s : samples) {
    sep();
    os << "{\"ph\":\"C\",\"name\":";
    json_escape(os, s.track);
    os << ",\"pid\":1,\"ts\":" << s.t_us << ",\"args\":{\"value\":" << s.value
       << "}}";
  }

  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace agebo::obs
