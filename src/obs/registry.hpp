// Metrics registry: named counters, gauges, and exponential-bucket
// histograms shared by every layer of the search stack (DESIGN.md §10).
//
// Write fast path is lock-free: each thread owns a shard of plain atomic
// slots (relaxed increments on thread-local cache lines, no cross-thread
// contention), and Registry::snapshot() aggregates all shards on scrape —
// the Prometheus client-library model. Registration (first lookup of a
// metric name) takes the registry mutex; handles returned from it are
// trivially copyable and cheap to hold in hot objects.
//
// The registry is process-global on purpose: metrics are monotonic
// totals, and components that need per-instance readings (for example an
// executor's utilization) capture a baseline at construction and report
// the delta — see exec::SimulatedExecutor::utilization().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace agebo::obs {

enum class MetricKind { kCounter, kDCounter, kGauge, kHistogram };

/// Exponential bucket layout: bucket i spans (bound(i-1), bound(i)] with
/// bound(i) = min * growth^i; values above the last bound clamp into the
/// final bucket, values <= min land in bucket 0. The defaults cover
/// 100 us .. ~30 hours when observations are seconds.
struct HistogramSpec {
  double min = 1e-4;
  double growth = 2.0;
  std::size_t buckets = 40;
};

struct MetricInfo;  // internal; defined in registry.cpp

/// Monotonic integer counter (events, FLOPs, retries).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const;
  void inc() const { add(1); }
  /// Aggregated total across all thread shards (takes the registry lock).
  std::uint64_t total() const;

 private:
  friend class Registry;
  explicit Counter(const MetricInfo* info) : info_(info) {}
  const MetricInfo* info_ = nullptr;
};

/// Monotonic double counter (accumulated seconds, samples).
class DCounter {
 public:
  DCounter() = default;
  void add(double delta) const;
  double total() const;

 private:
  friend class Registry;
  explicit DCounter(const MetricInfo* info) : info_(info) {}
  const MetricInfo* info_ = nullptr;
};

/// Last-write-wins instantaneous value (utilization, best objective).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;
  double get() const;

 private:
  friend class Registry;
  explicit Gauge(const MetricInfo* info) : info_(info) {}
  const MetricInfo* info_ = nullptr;
};

/// Exponential-bucket histogram (latency distributions).
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class Registry;
  explicit Histogram(const MetricInfo* info) : info_(info) {}
  const MetricInfo* info_ = nullptr;
};

/// Aggregated histogram state in a Snapshot.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> upper_bounds;         ///< bound(i) per bucket
  std::vector<std::uint64_t> bucket_counts;
  double mean() const;
  /// Quantile estimate (q in [0, 1]) with linear interpolation inside the
  /// bucket; returns 0 when empty.
  double quantile(double q) const;
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter/DCounter total or gauge value (histograms use `hist`).
  double value = 0.0;
  HistogramData hist;
};

/// Point-in-time aggregation of every registered metric, sorted by name.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;
  const MetricSnapshot* find(const std::string& name) const;
  /// `name,kind,field,value` rows — one row per scalar, histograms expand
  /// to count/sum/mean/p50/p90/p99 fields.
  std::string to_csv() const;
  std::string to_json() const;
};

class Registry {
 public:
  /// The process-wide registry every handle writes to.
  static Registry& global();

  /// Look up or create a metric. Re-requesting a name returns a handle to
  /// the same metric; requesting it with a different kind throws.
  Counter counter(const std::string& name);
  DCounter dcounter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, HistogramSpec spec = {});

  Snapshot snapshot() const;

  /// Zero every metric value (registrations and live handles stay valid)
  /// — test isolation and per-run resets.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  struct Impl;  // internal (registry.cpp); public only for in-TU helpers

 private:
  Registry();
  ~Registry();
  Impl* impl_;
  friend class Counter;
  friend class DCounter;
  friend class Gauge;
  friend class Histogram;
};

/// FLOP accounting hook for the kernel layer: compiled to nothing when
/// observability is off so the GEMM hot path carries zero instrumentation
/// cost in -DAGEBO_OBS=OFF builds.
#ifdef AGEBO_OBS_DISABLED
inline void add_flops(std::uint64_t) {}
#else
void add_flops(std::uint64_t flops);
#endif

}  // namespace agebo::obs
