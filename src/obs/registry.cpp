#include "obs/registry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace agebo::obs {

namespace {

// Fixed shard capacity keeps every slot address-stable for the lifetime of
// the registry, so writers never synchronize with shard growth: an
// increment is one relaxed fetch_add on a thread-local cache line.
constexpr std::size_t kU64Slots = 4096;
constexpr std::size_t kDblSlots = 1024;
constexpr std::size_t kGaugeSlots = 512;

struct Shard {
  std::array<std::atomic<std::uint64_t>, kU64Slots> u64{};
  std::array<std::atomic<double>, kDblSlots> dbl{};
};

void atomic_add_double(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// Layout: counters use one u64 slot; dcounters one dbl slot; histograms
// use u64 slots [offset] = count, [offset+1 .. offset+buckets] = buckets
// and one dbl slot for the sum. Gauges live in a central array (they are
// last-write-wins, which does not aggregate across shards).
struct MetricInfo {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::size_t u64_offset = 0;
  std::size_t dbl_offset = 0;
  std::size_t gauge_index = 0;
  HistogramSpec spec;
  std::vector<double> bounds;
};

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: node-based, so MetricInfo addresses handed to handles stay
  // valid across later registrations.
  std::map<std::string, MetricInfo> metrics;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::size_t> free_shards;  // indices retired by exited threads
  std::size_t next_u64 = 0;
  std::size_t next_dbl = 0;
  std::size_t next_gauge = 0;
  std::array<std::atomic<double>, kGaugeSlots> gauges{};

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_shards.empty()) {
      const std::size_t idx = free_shards.back();
      free_shards.pop_back();
      return shards[idx].get();
    }
    shards.push_back(std::make_unique<Shard>());
    return shards.back().get();
  }

  void release_shard(Shard* shard) {
    // Totals must survive thread exit, so the shard (with its counts) goes
    // back on the free list for the next thread rather than being freed.
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].get() == shard) {
        free_shards.push_back(i);
        return;
      }
    }
  }

  std::uint64_t sum_u64(std::size_t slot) const {
    std::uint64_t total = 0;
    for (const auto& s : shards) {
      total += s->u64[slot].load(std::memory_order_relaxed);
    }
    return total;
  }

  double sum_dbl(std::size_t slot) const {
    double total = 0.0;
    for (const auto& s : shards) {
      total += s->dbl[slot].load(std::memory_order_relaxed);
    }
    return total;
  }
};

namespace {

struct TlsShard {
  Registry::Impl* impl = nullptr;
  Shard* shard = nullptr;
  ~TlsShard() {
    if (impl != nullptr && shard != nullptr) impl->release_shard(shard);
  }
};

Registry::Impl* g_impl = nullptr;  // set once by Registry::global()

Shard* tls_shard() {
  thread_local TlsShard tls;
  if (tls.shard == nullptr) {
    Registry::global();  // ensure construction
    tls.impl = g_impl;
    tls.shard = g_impl->acquire_shard();
  }
  return tls.shard;
}

}  // namespace

Registry::Registry() : impl_(new Impl) { g_impl = impl_; }

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

const MetricInfo* register_metric(Registry::Impl* impl, const std::string& name,
                                  MetricKind kind, const HistogramSpec* spec) {
  if (name.empty()) throw std::invalid_argument("obs: empty metric name");
  std::lock_guard<std::mutex> lock(impl->mu);
  auto it = impl->metrics.find(name);
  if (it != impl->metrics.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("obs: metric '" + name +
                                  "' re-registered with a different kind");
    }
    return &it->second;
  }
  MetricInfo info;
  info.name = name;
  info.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      if (impl->next_u64 + 1 > kU64Slots) {
        throw std::length_error("obs: counter slots exhausted");
      }
      info.u64_offset = impl->next_u64;
      impl->next_u64 += 1;
      break;
    case MetricKind::kDCounter:
      if (impl->next_dbl + 1 > kDblSlots) {
        throw std::length_error("obs: dcounter slots exhausted");
      }
      info.dbl_offset = impl->next_dbl;
      impl->next_dbl += 1;
      break;
    case MetricKind::kGauge:
      if (impl->next_gauge + 1 > kGaugeSlots) {
        throw std::length_error("obs: gauge slots exhausted");
      }
      info.gauge_index = impl->next_gauge;
      impl->next_gauge += 1;
      break;
    case MetricKind::kHistogram: {
      if (spec == nullptr || spec->buckets == 0 || spec->min <= 0.0 ||
          spec->growth <= 1.0) {
        throw std::invalid_argument("obs: bad HistogramSpec for '" + name + "'");
      }
      if (impl->next_u64 + 1 + spec->buckets > kU64Slots ||
          impl->next_dbl + 1 > kDblSlots) {
        throw std::length_error("obs: histogram slots exhausted");
      }
      info.spec = *spec;
      info.u64_offset = impl->next_u64;
      impl->next_u64 += 1 + spec->buckets;
      info.dbl_offset = impl->next_dbl;
      impl->next_dbl += 1;
      info.bounds.resize(spec->buckets);
      double bound = spec->min;
      for (std::size_t i = 0; i < spec->buckets; ++i) {
        info.bounds[i] = bound;
        bound *= spec->growth;
      }
      break;
    }
  }
  auto [pos, inserted] = impl->metrics.emplace(name, std::move(info));
  (void)inserted;
  return &pos->second;
}

}  // namespace

Counter Registry::counter(const std::string& name) {
  return Counter(register_metric(impl_, name, MetricKind::kCounter, nullptr));
}

DCounter Registry::dcounter(const std::string& name) {
  return DCounter(register_metric(impl_, name, MetricKind::kDCounter, nullptr));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(register_metric(impl_, name, MetricKind::kGauge, nullptr));
}

Histogram Registry::histogram(const std::string& name, HistogramSpec spec) {
  return Histogram(register_metric(impl_, name, MetricKind::kHistogram, &spec));
}

void Counter::add(std::uint64_t delta) const {
  if (info_ == nullptr) return;
  tls_shard()->u64[info_->u64_offset].fetch_add(delta,
                                                std::memory_order_relaxed);
}

std::uint64_t Counter::total() const {
  if (info_ == nullptr) return 0;
  Registry::Impl* impl = g_impl;
  std::lock_guard<std::mutex> lock(impl->mu);
  return impl->sum_u64(info_->u64_offset);
}

void DCounter::add(double delta) const {
  if (info_ == nullptr) return;
  atomic_add_double(tls_shard()->dbl[info_->dbl_offset], delta);
}

double DCounter::total() const {
  if (info_ == nullptr) return 0.0;
  Registry::Impl* impl = g_impl;
  std::lock_guard<std::mutex> lock(impl->mu);
  return impl->sum_dbl(info_->dbl_offset);
}

void Gauge::set(double value) const {
  if (info_ == nullptr) return;
  g_impl->gauges[info_->gauge_index].store(value, std::memory_order_relaxed);
}

double Gauge::get() const {
  if (info_ == nullptr) return 0.0;
  return g_impl->gauges[info_->gauge_index].load(std::memory_order_relaxed);
}

void Histogram::observe(double value) const {
  if (info_ == nullptr) return;
  const auto& bounds = info_->bounds;
  // First bucket whose upper bound is >= value; overflow clamps into the
  // last bucket so bound(i-1) < v <= bound(i) always holds inside range.
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), value) -
          bounds.begin()),
      bounds.size() - 1);
  Shard* shard = tls_shard();
  shard->u64[info_->u64_offset].fetch_add(1, std::memory_order_relaxed);
  shard->u64[info_->u64_offset + 1 + idx].fetch_add(1,
                                                    std::memory_order_relaxed);
  atomic_add_double(shard->dbl[info_->dbl_offset], value);
}

double HistogramData::mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::uint64_t next = cumulative + bucket_counts[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double hi = upper_bounds[i];
      if (bucket_counts[i] == 0) return hi;
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(bucket_counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.metrics.reserve(impl_->metrics.size());
  for (const auto& [name, info] : impl_->metrics) {
    MetricSnapshot m;
    m.name = name;
    m.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        m.value = static_cast<double>(impl_->sum_u64(info.u64_offset));
        break;
      case MetricKind::kDCounter:
        m.value = impl_->sum_dbl(info.dbl_offset);
        break;
      case MetricKind::kGauge:
        m.value = impl_->gauges[info.gauge_index].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        m.hist.count = impl_->sum_u64(info.u64_offset);
        m.hist.sum = impl_->sum_dbl(info.dbl_offset);
        m.hist.upper_bounds = info.bounds;
        m.hist.bucket_counts.resize(info.bounds.size());
        for (std::size_t i = 0; i < info.bounds.size(); ++i) {
          m.hist.bucket_counts[i] = impl_->sum_u64(info.u64_offset + 1 + i);
        }
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& shard : impl_->shards) {
    for (auto& slot : shard->u64) slot.store(0, std::memory_order_relaxed);
    for (auto& slot : shard->dbl) slot.store(0.0, std::memory_order_relaxed);
  }
  for (auto& g : impl_->gauges) g.store(0.0, std::memory_order_relaxed);
}

const MetricSnapshot* Snapshot::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kDCounter:
      return "dcounter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void csv_row(std::ostringstream& os, const std::string& name, MetricKind kind,
             const char* field, double value) {
  os << name << ',' << kind_name(kind) << ',' << field << ',' << value << '\n';
}

}  // namespace

std::string Snapshot::to_csv() const {
  std::ostringstream os;
  os.precision(12);
  os << "name,kind,field,value\n";
  for (const auto& m : metrics) {
    if (m.kind == MetricKind::kHistogram) {
      csv_row(os, m.name, m.kind, "count", static_cast<double>(m.hist.count));
      csv_row(os, m.name, m.kind, "sum", m.hist.sum);
      csv_row(os, m.name, m.kind, "mean", m.hist.mean());
      csv_row(os, m.name, m.kind, "p50", m.hist.quantile(0.50));
      csv_row(os, m.name, m.kind, "p90", m.hist.quantile(0.90));
      csv_row(os, m.name, m.kind, "p99", m.hist.quantile(0.99));
    } else {
      csv_row(os, m.name, m.kind, "value", m.value);
    }
  }
  return os.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << m.name << "\",\"kind\":\"" << kind_name(m.kind)
       << "\"";
    if (m.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << m.hist.count << ",\"sum\":" << m.hist.sum
         << ",\"mean\":" << m.hist.mean() << ",\"p50\":" << m.hist.quantile(0.5)
         << ",\"p99\":" << m.hist.quantile(0.99) << ",\"buckets\":[";
      for (std::size_t i = 0; i < m.hist.bucket_counts.size(); ++i) {
        if (i > 0) os << ',';
        os << "[" << m.hist.upper_bounds[i] << ',' << m.hist.bucket_counts[i]
           << "]";
      }
      os << "]";
    } else {
      os << ",\"value\":" << m.value;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

#ifndef AGEBO_OBS_DISABLED
void add_flops(std::uint64_t flops) {
  static const Counter counter = Registry::global().counter("kernels.flops");
  counter.add(flops);
}
#endif

}  // namespace agebo::obs
