// Scoped spans and trace-event recording (DESIGN.md §10).
//
// Two producers feed one store:
//  - OBS_SPAN("name", ...) — an RAII wall-clock timer on the calling
//    thread, written into that thread's ring buffer when the scope ends.
//    Compiled to nothing under -DAGEBO_OBS=OFF.
//  - record_span(...) — an explicit event with caller-supplied timestamps,
//    which is how the cluster simulator maps *virtual* time onto the same
//    trace: each simulated worker becomes a lane with its gang intervals.
//
// Rings are per-thread and fixed-capacity (oldest events overwritten), so
// recording never blocks on another thread and never allocates unboundedly.
// Lanes are named (set_thread_lane) and become Chrome-trace threads; see
// trace.hpp for the exporter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace agebo::obs {

/// One key/value annotation attached to a span.
struct TraceArg {
  std::string key;
  std::string value;
};

/// One completed span or explicitly recorded event. Timestamps are
/// microseconds: wall spans count from the trace epoch (first obs use or
/// last trace_reset); simulator spans carry virtual campaign time.
struct TraceEvent {
  std::string name;
  std::string lane;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<TraceArg> args;
};

/// One sample of a Chrome counter track ("C" event), e.g. jobs in flight.
struct CounterSample {
  std::string track;
  double t_us = 0.0;
  double value = 0.0;
};

/// Name this thread's trace lane (worker threads call it once at startup;
/// re-setting the same name is cheap). Unnamed threads get "thread-<n>".
void set_thread_lane(const std::string& name);
const std::string& thread_lane();

/// Wall seconds since the trace epoch.
double trace_now_seconds();

/// Record a completed span with explicit timing (seconds). Empty `lane`
/// means the calling thread's lane. The simulator calls this with virtual
/// times; everything else should prefer OBS_SPAN.
void record_span(const std::string& name, const std::string& lane,
                 double start_seconds, double duration_seconds,
                 std::vector<TraceArg> args = {});

/// Record one sample of a counter track (virtual or wall seconds).
void record_counter_sample(const std::string& track, double t_seconds,
                           double value);

/// All recorded events / samples, oldest-first per lane. Used by the
/// Chrome exporter and by tests.
std::vector<TraceEvent> collect_trace_events();
std::vector<CounterSample> collect_counter_samples();
std::size_t trace_event_count();
/// Events overwritten because a ring filled up (0 in healthy runs).
std::size_t trace_dropped_count();

/// Drop all recorded events and samples and restart the trace epoch.
void trace_reset();

/// RAII wall-clock span: measures construction → destruction and records
/// the event on the calling thread's lane. Use through OBS_SPAN so the
/// timer (and its argument expressions) vanish when observability is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::vector<TraceArg> args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::vector<TraceArg> args_;
  double start_us_;
};

#define AGEBO_OBS_CAT2(a, b) a##b
#define AGEBO_OBS_CAT(a, b) AGEBO_OBS_CAT2(a, b)

#ifdef AGEBO_OBS_DISABLED
#define OBS_SPAN(...) static_cast<void>(0)
#else
#define OBS_SPAN(...) \
  ::agebo::obs::ScopedSpan AGEBO_OBS_CAT(obs_span_, __LINE__)(__VA_ARGS__)
#endif

}  // namespace agebo::obs
