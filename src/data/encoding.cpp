#include "data/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::data {

void OneHotEncoder::fit(const Dataset& ds,
                        std::vector<std::size_t> categorical_columns) {
  std::sort(categorical_columns.begin(), categorical_columns.end());
  categorical_columns.erase(
      std::unique(categorical_columns.begin(), categorical_columns.end()),
      categorical_columns.end());
  for (std::size_t c : categorical_columns) {
    if (c >= ds.n_features) {
      throw std::invalid_argument("OneHotEncoder: column out of range");
    }
  }
  columns_ = std::move(categorical_columns);
  cardinalities_.assign(columns_.size(), 0);
  input_features_ = ds.n_features;

  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const float* row = ds.row(i);
    for (std::size_t k = 0; k < columns_.size(); ++k) {
      const float v = row[columns_[k]];
      if (v < 0.0f || v != std::floor(v)) {
        throw std::invalid_argument(
            "OneHotEncoder: categorical column holds non-category value");
      }
      cardinalities_[k] = std::max(cardinalities_[k],
                                   static_cast<std::size_t>(v) + 1);
    }
  }
  fitted_ = true;
}

std::size_t OneHotEncoder::output_features() const {
  if (!fitted_) throw std::logic_error("OneHotEncoder: not fitted");
  std::size_t n = input_features_ - columns_.size();
  for (std::size_t card : cardinalities_) n += card;
  return n;
}

Dataset OneHotEncoder::transform(const Dataset& ds) const {
  if (!fitted_) throw std::logic_error("OneHotEncoder: not fitted");
  if (ds.n_features != input_features_) {
    throw std::invalid_argument("OneHotEncoder: feature count mismatch");
  }
  Dataset out;
  out.name = ds.name;
  out.n_rows = ds.n_rows;
  out.n_classes = ds.n_classes;
  out.n_features = output_features();
  out.y = ds.y;
  out.x.assign(out.n_rows * out.n_features, 0.0f);

  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const float* src = ds.row(i);
    float* dst = out.x.data() + i * out.n_features;
    std::size_t pos = 0;
    // Pass-through features first, original order.
    for (std::size_t f = 0; f < ds.n_features; ++f) {
      if (std::binary_search(columns_.begin(), columns_.end(), f)) continue;
      dst[pos++] = src[f];
    }
    // Then the one-hot blocks, column order.
    for (std::size_t k = 0; k < columns_.size(); ++k) {
      const auto v = static_cast<std::size_t>(src[columns_[k]]);
      if (v < cardinalities_[k]) dst[pos + v] = 1.0f;  // unseen -> zeros
      pos += cardinalities_[k];
    }
  }
  out.validate();
  return out;
}

void MinMaxScaler::fit(const Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("MinMaxScaler: empty");
  mins_.assign(ds.n_features, 0.0f);
  ranges_.assign(ds.n_features, 0.0f);
  std::vector<float> maxs(ds.n_features);
  for (std::size_t f = 0; f < ds.n_features; ++f) {
    mins_[f] = ds.row(0)[f];
    maxs[f] = ds.row(0)[f];
  }
  for (std::size_t i = 1; i < ds.n_rows; ++i) {
    const float* row = ds.row(i);
    for (std::size_t f = 0; f < ds.n_features; ++f) {
      mins_[f] = std::min(mins_[f], row[f]);
      maxs[f] = std::max(maxs[f], row[f]);
    }
  }
  for (std::size_t f = 0; f < ds.n_features; ++f) {
    ranges_[f] = maxs[f] - mins_[f];
  }
}

void MinMaxScaler::transform(Dataset& ds) const {
  if (!fitted()) throw std::logic_error("MinMaxScaler: not fitted");
  if (ds.n_features != mins_.size()) {
    throw std::invalid_argument("MinMaxScaler: feature count mismatch");
  }
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    float* row = ds.x.data() + i * ds.n_features;
    for (std::size_t f = 0; f < ds.n_features; ++f) {
      row[f] = ranges_[f] > 0.0f ? (row[f] - mins_[f]) / ranges_[f] : 0.0f;
    }
  }
}

}  // namespace agebo::data
