// Minimal ARFF reader for the OpenML distribution format of the paper's
// datasets (Covertype, Airlines, Albert, Dionis are all published as ARFF).
// Supports NUMERIC/REAL/INTEGER attributes and one nominal attribute used
// as the class label (by default the last attribute); other nominal
// attributes are label-encoded to their value index. '?' values map to 0.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace agebo::data {

struct ArffOptions {
  /// Name of the class attribute; empty = the last attribute.
  std::string class_attribute;
};

Dataset read_arff(std::istream& is, const ArffOptions& options = {});
Dataset read_arff_file(const std::string& path, const ArffOptions& options = {});

}  // namespace agebo::data
