#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::data {

Dataset make_classification(const SyntheticSpec& spec) {
  if (spec.n_classes < 2) throw std::invalid_argument("make_classification: n_classes < 2");
  if (spec.n_informative == 0 || spec.n_informative > spec.n_features) {
    throw std::invalid_argument("make_classification: bad n_informative");
  }
  if (spec.label_noise < 0.0 || spec.label_noise >= 1.0) {
    throw std::invalid_argument("make_classification: bad label_noise");
  }
  Rng rng(spec.seed);

  // Class priors: geometric decay for imbalance > 1, then normalized.
  std::vector<double> priors(spec.n_classes);
  double cum = 0.0;
  for (std::size_t c = 0; c < spec.n_classes; ++c) {
    priors[c] = std::pow(1.0 / spec.imbalance, static_cast<double>(c));
    cum += priors[c];
  }
  for (double& p : priors) p /= cum;
  std::vector<double> cdf(spec.n_classes);
  double acc = 0.0;
  for (std::size_t c = 0; c < spec.n_classes; ++c) {
    acc += priors[c];
    cdf[c] = acc;
  }

  // Centroids in latent space, scaled by class_sep.
  const std::size_t k = spec.n_informative;
  std::vector<double> centroids(spec.n_classes * k);
  for (double& v : centroids) v = rng.normal(0.0, spec.class_sep);

  // Random mixing matrix latent -> observed features.
  std::vector<double> mix(spec.n_features * k);
  for (double& v : mix) v = rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(k)));

  Dataset ds;
  ds.name = spec.name;
  ds.n_rows = spec.n_rows;
  ds.n_features = spec.n_features;
  ds.n_classes = spec.n_classes;
  ds.x.resize(spec.n_rows * spec.n_features);
  ds.y.resize(spec.n_rows);

  std::vector<double> latent(k);
  for (std::size_t i = 0; i < spec.n_rows; ++i) {
    const double u = rng.uniform();
    std::size_t cls = 0;
    while (cls + 1 < spec.n_classes && u > cdf[cls]) ++cls;

    for (std::size_t j = 0; j < k; ++j) {
      latent[j] = centroids[cls * k + j] + rng.normal(0.0, 1.0);
    }
    float* row = ds.x.data() + i * spec.n_features;
    for (std::size_t f = 0; f < spec.n_features; ++f) {
      double v = 0.0;
      for (std::size_t j = 0; j < k; ++j) v += mix[f * k + j] * latent[j];
      if (spec.nonlinear) {
        // Mix of saturating and quadratic warps so the Bayes-optimal
        // boundary is not linear; keeps MLP depth/width relevant.
        switch (f % 3) {
          case 0: v = std::tanh(v); break;
          case 1: v = v + 0.25 * v * v; break;
          default: break;
        }
      }
      v += rng.normal(0.0, spec.feature_noise);
      row[f] = static_cast<float>(v);
    }
    int label = static_cast<int>(cls);
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise)) {
      label = static_cast<int>(rng.index(spec.n_classes));
    }
    ds.y[i] = label;
  }
  ds.validate();
  return ds;
}

namespace {

std::size_t scaled(std::size_t rows, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("dataset scale must be in (0, 1]");
  }
  return std::max<std::size_t>(256, static_cast<std::size_t>(
                                        static_cast<double>(rows) * scale));
}

}  // namespace

SyntheticSpec covertype_spec(double scale, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "covertype";
  s.n_rows = scaled(581'012, scale);
  s.n_features = 54;
  s.n_classes = 7;
  s.n_informative = 18;
  s.class_sep = 2.6;       // easiest task: paper val acc ~0.93
  s.label_noise = 0.02;
  s.feature_noise = 0.15;
  s.imbalance = 1.6;       // Covertype is strongly imbalanced
  s.seed = seed;
  return s;
}

SyntheticSpec airlines_spec(double scale, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "airlines";
  s.n_rows = scaled(539'383, scale);
  s.n_features = 8;
  s.n_classes = 2;
  s.n_informative = 5;
  s.class_sep = 0.55;      // hardest: paper val acc ~0.65
  s.label_noise = 0.18;
  s.feature_noise = 0.4;
  s.imbalance = 1.2;
  s.seed = seed + 1;
  return s;
}

SyntheticSpec albert_spec(double scale, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "albert";
  s.n_rows = scaled(425'240, scale);
  s.n_features = 79;
  s.n_classes = 2;
  s.n_informative = 24;
  s.class_sep = 0.6;       // paper val acc ~0.66
  s.label_noise = 0.2;
  s.feature_noise = 0.3;
  s.imbalance = 1.0;
  s.seed = seed + 2;
  return s;
}

SyntheticSpec dionis_spec(double scale, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "dionis";
  s.n_rows = scaled(416'188, scale);
  s.n_features = 61;
  s.n_classes = 355;
  s.n_informative = 30;
  s.class_sep = 3.2;       // many classes but separable: paper val acc ~0.90
  s.label_noise = 0.03;
  s.feature_noise = 0.2;
  s.imbalance = 1.02;
  s.seed = seed + 3;
  return s;
}

std::vector<SyntheticSpec> paper_dataset_specs(double scale, std::uint64_t seed) {
  return {covertype_spec(scale, seed), airlines_spec(scale, seed),
          albert_spec(scale, seed), dionis_spec(scale, seed)};
}

}  // namespace agebo::data
