// CSV persistence for datasets: last column is the integer class label,
// preceding columns are float features. Used by examples to save/load
// generated benchmark data and by users to bring their own tabular data.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace agebo::data {

/// Write `ds` as CSV with a header row ("f0,...,fN,label").
void write_csv(const Dataset& ds, std::ostream& os);
void write_csv_file(const Dataset& ds, const std::string& path);

/// Read a dataset written by write_csv. `n_classes` of the result is
/// max(label)+1 unless `n_classes_hint` is larger.
Dataset read_csv(std::istream& is, std::size_t n_classes_hint = 0);
Dataset read_csv_file(const std::string& path, std::size_t n_classes_hint = 0);

}  // namespace agebo::data
