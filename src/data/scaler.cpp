#include "data/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::data {

void StandardScaler::fit(const Dataset& ds) {
  if (ds.n_rows == 0) throw std::invalid_argument("StandardScaler::fit: empty dataset");
  means_.assign(ds.n_features, 0.0f);
  stds_.assign(ds.n_features, 0.0f);

  std::vector<double> mean(ds.n_features, 0.0);
  std::vector<double> m2(ds.n_features, 0.0);
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const float* row = ds.row(i);
    const double n = static_cast<double>(i + 1);
    for (std::size_t f = 0; f < ds.n_features; ++f) {
      const double delta = row[f] - mean[f];
      mean[f] += delta / n;
      m2[f] += delta * (row[f] - mean[f]);
    }
  }
  const double denom = ds.n_rows > 1 ? static_cast<double>(ds.n_rows - 1) : 1.0;
  for (std::size_t f = 0; f < ds.n_features; ++f) {
    means_[f] = static_cast<float>(mean[f]);
    stds_[f] = static_cast<float>(std::sqrt(m2[f] / denom));
  }
}

void StandardScaler::transform(Dataset& ds) const {
  if (!fitted()) throw std::logic_error("StandardScaler::transform before fit");
  if (ds.n_features != means_.size()) {
    throw std::invalid_argument("StandardScaler::transform: feature mismatch");
  }
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    float* row = ds.x.data() + i * ds.n_features;
    for (std::size_t f = 0; f < ds.n_features; ++f) {
      row[f] -= means_[f];
      if (stds_[f] > 1e-8f) row[f] /= stds_[f];
    }
  }
}

void standardize(TrainValidTest& splits) {
  StandardScaler scaler;
  scaler.fit(splits.train);
  scaler.transform(splits.train);
  scaler.transform(splits.valid);
  scaler.transform(splits.test);
}

}  // namespace agebo::data
