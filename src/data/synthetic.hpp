// Synthetic tabular data generators standing in for the four OpenML
// benchmark datasets (Covertype, Airlines, Albert, Dionis), which are not
// available offline. See DESIGN.md §2 for the substitution rationale.
//
// Each generator produces a classification problem whose *shape* matches
// the real dataset (feature count, class count, class-count skew) and whose
// *difficulty* is tuned so that a well-trained MLP lands near the accuracy
// band the paper reports (Covertype ≈0.93 valid acc, Airlines ≈0.65,
// Albert ≈0.66, Dionis ≈0.90). Difficulty is controlled by class-centroid
// separation, nonlinear feature warping, and label noise.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace agebo::data {

/// Parameters for the cluster-based synthetic classification generator
/// (in the spirit of scikit-learn's make_classification, plus nonlinear
/// warping so linear models cannot saturate the task).
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t n_rows = 10'000;
  std::size_t n_features = 20;
  std::size_t n_classes = 2;
  /// Informative latent dimensions; remaining features are random linear
  /// combinations plus noise.
  std::size_t n_informative = 10;
  /// Distance between class centroids in latent space (higher = easier).
  double class_sep = 1.0;
  /// Fraction of labels flipped uniformly at random (irreducible error).
  double label_noise = 0.0;
  /// Gaussian observation noise added to every feature.
  double feature_noise = 0.1;
  /// When > 1, class priors decay geometrically (class imbalance).
  double imbalance = 1.0;
  /// Apply element-wise nonlinear warp (tanh/quadratic mix) to features.
  bool nonlinear = true;
  std::uint64_t seed = 42;
};

/// Generate a dataset from the spec. Deterministic in spec.seed.
Dataset make_classification(const SyntheticSpec& spec);

/// Dataset profiles mirroring the paper's four benchmarks. `scale` in (0,1]
/// shrinks the row count (e.g. 0.02 gives ~11.6k Covertype-like rows) so
/// tests and examples stay fast; benches choose their own scale.
SyntheticSpec covertype_spec(double scale = 1.0, std::uint64_t seed = 42);
SyntheticSpec airlines_spec(double scale = 1.0, std::uint64_t seed = 42);
SyntheticSpec albert_spec(double scale = 1.0, std::uint64_t seed = 42);
SyntheticSpec dionis_spec(double scale = 1.0, std::uint64_t seed = 42);

/// All four specs in paper order {Covertype, Airlines, Albert, Dionis}.
std::vector<SyntheticSpec> paper_dataset_specs(double scale = 1.0,
                                               std::uint64_t seed = 42);

}  // namespace agebo::data
