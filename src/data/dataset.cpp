#include "data/dataset.hpp"

#include <stdexcept>

namespace agebo::data {

void Dataset::validate() const {
  if (x.size() != n_rows * n_features) {
    throw std::invalid_argument("Dataset: feature buffer size mismatch");
  }
  if (y.size() != n_rows) {
    throw std::invalid_argument("Dataset: label count mismatch");
  }
  for (int label : y) {
    if (label < 0 || static_cast<std::size_t>(label) >= n_classes) {
      throw std::invalid_argument("Dataset: label out of range");
    }
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.n_rows = rows.size();
  out.n_features = n_features;
  out.n_classes = n_classes;
  out.name = name;
  out.x.reserve(rows.size() * n_features);
  out.y.reserve(rows.size());
  for (std::size_t r : rows) {
    if (r >= n_rows) throw std::out_of_range("Dataset::subset: row index");
    out.x.insert(out.x.end(), row(r), row(r) + n_features);
    out.y.push_back(y[r]);
  }
  return out;
}

TrainValidTest split(const Dataset& ds, const SplitFractions& f, Rng& rng) {
  if (f.train <= 0 || f.valid <= 0 || f.test <= 0) {
    throw std::invalid_argument("split: fractions must be positive");
  }
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;
  rng.shuffle(order);

  const double total = f.train + f.valid + f.test;
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(ds.n_rows) * f.train / total);
  const auto n_valid = static_cast<std::size_t>(
      static_cast<double>(ds.n_rows) * f.valid / total);

  TrainValidTest out;
  out.train = ds.subset({order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_train)});
  out.valid = ds.subset({order.begin() + static_cast<std::ptrdiff_t>(n_train),
                         order.begin() + static_cast<std::ptrdiff_t>(n_train + n_valid)});
  out.test = ds.subset({order.begin() + static_cast<std::ptrdiff_t>(n_train + n_valid),
                        order.end()});
  return out;
}

std::vector<Dataset> shard(const Dataset& ds, std::size_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("shard: n must be >= 1");
  if (n > ds.n_rows) throw std::invalid_argument("shard: more shards than rows");
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;
  rng.shuffle(order);

  std::vector<std::vector<std::size_t>> buckets(n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    buckets[i % n].push_back(order[i]);
  }
  std::vector<Dataset> shards;
  shards.reserve(n);
  for (auto& bucket : buckets) shards.push_back(ds.subset(bucket));
  return shards;
}

std::vector<std::size_t> class_counts(const Dataset& ds) {
  std::vector<std::size_t> counts(ds.n_classes, 0);
  for (int label : ds.y) counts[static_cast<std::size_t>(label)]++;
  return counts;
}

}  // namespace agebo::data
