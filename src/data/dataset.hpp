// Tabular dataset container plus splitting/sharding utilities.
//
// The paper groups each OpenML dataset into 42% train / 25% validation /
// 33% test (the Auto-PyTorch benchmark split) and shards the training set
// into `n` mutually exclusive subsets for data-parallel training; both
// operations live here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace agebo::data {

/// Dense tabular classification dataset. Features are row-major float32
/// (n_rows x n_features); labels are class indices in [0, n_classes).
struct Dataset {
  std::size_t n_rows = 0;
  std::size_t n_features = 0;
  std::size_t n_classes = 0;
  std::vector<float> x;  // n_rows * n_features
  std::vector<int> y;    // n_rows
  std::string name;

  const float* row(std::size_t i) const { return x.data() + i * n_features; }

  /// Structural sanity check; throws std::invalid_argument on violation.
  void validate() const;

  /// Copy the given rows into a new dataset (order preserved).
  Dataset subset(const std::vector<std::size_t>& rows) const;
};

/// The paper's split proportions.
struct SplitFractions {
  double train = 0.42;
  double valid = 0.25;
  double test = 0.33;
};

struct TrainValidTest {
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// Shuffle rows with `rng` and split into train/valid/test by fraction.
TrainValidTest split(const Dataset& ds, const SplitFractions& f, Rng& rng);

/// Split the training set into `n` mutually exclusive shards of near-equal
/// size (round-robin over a shuffled order). Every row lands in exactly one
/// shard — the data-parallel contract from Sec III-B.
std::vector<Dataset> shard(const Dataset& ds, std::size_t n, Rng& rng);

/// Per-class row counts (size n_classes).
std::vector<std::size_t> class_counts(const Dataset& ds);

}  // namespace agebo::data
