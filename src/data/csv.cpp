#include "data/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::data {

void write_csv(const Dataset& ds, std::ostream& os) {
  for (std::size_t f = 0; f < ds.n_features; ++f) os << 'f' << f << ',';
  os << "label\n";
  for (std::size_t i = 0; i < ds.n_rows; ++i) {
    const float* row = ds.row(i);
    for (std::size_t f = 0; f < ds.n_features; ++f) os << row[f] << ',';
    os << ds.y[i] << '\n';
  }
}

void write_csv_file(const Dataset& ds, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(ds, os);
}

Dataset read_csv(std::istream& is, std::size_t n_classes_hint) {
  Dataset ds;
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("read_csv: empty input");
  // Count columns from the header.
  std::size_t cols = 1;
  for (char ch : line) {
    if (ch == ',') ++cols;
  }
  if (cols < 2) throw std::runtime_error("read_csv: need >= 1 feature + label");
  ds.n_features = cols - 1;

  int max_label = -1;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    for (std::size_t c = 0; c < ds.n_features; ++c) {
      if (!std::getline(ls, cell, ',')) {
        throw std::runtime_error("read_csv: short row");
      }
      ds.x.push_back(std::stof(cell));
    }
    if (!std::getline(ls, cell, ',')) throw std::runtime_error("read_csv: missing label");
    const int label = std::stoi(cell);
    if (label < 0) throw std::runtime_error("read_csv: negative label");
    max_label = std::max(max_label, label);
    ds.y.push_back(label);
    ++ds.n_rows;
  }
  ds.n_classes = std::max<std::size_t>(static_cast<std::size_t>(max_label) + 1,
                                       n_classes_hint);
  ds.validate();
  return ds;
}

Dataset read_csv_file(const std::string& path, std::size_t n_classes_hint) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(is, n_classes_hint);
}

}  // namespace agebo::data
