// Tabular preprocessing beyond standardization: one-hot expansion of
// integer-coded categorical columns (as produced by the ARFF reader) and
// min-max scaling. Fitted on the training split, applied everywhere — the
// usual pipeline ahead of MLP training on OpenML-style data.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace agebo::data {

/// Expands selected columns into one-hot indicator blocks; remaining
/// columns pass through unchanged (in original order, pass-through first).
class OneHotEncoder {
 public:
  /// `categorical_columns` lists feature indices holding category codes.
  /// Cardinalities are learned from the fit dataset; unseen categories at
  /// transform time map to an all-zeros block.
  void fit(const Dataset& ds, std::vector<std::size_t> categorical_columns);

  Dataset transform(const Dataset& ds) const;

  bool fitted() const { return !cardinalities_.empty() || fitted_; }
  std::size_t output_features() const;

 private:
  bool fitted_ = false;
  std::size_t input_features_ = 0;
  std::vector<std::size_t> columns_;        // sorted categorical columns
  std::vector<std::size_t> cardinalities_;  // aligned with columns_
};

/// Per-feature min-max scaling to [0, 1]; constant features map to 0.
class MinMaxScaler {
 public:
  void fit(const Dataset& ds);
  void transform(Dataset& ds) const;
  bool fitted() const { return !mins_.empty(); }

 private:
  std::vector<float> mins_;
  std::vector<float> ranges_;
};

}  // namespace agebo::data
