// Standardization (zero mean / unit variance per feature), fitted on the
// training split and applied to validation/test — the usual tabular
// preprocessing ahead of MLP training.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace agebo::data {

class StandardScaler {
 public:
  /// Learn per-feature mean and stddev from `ds`.
  void fit(const Dataset& ds);

  /// Apply the learned transform in place. Requires fit() first and a
  /// matching feature count. Features with ~zero variance are left centered.
  void transform(Dataset& ds) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stddevs() const { return stds_; }

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

/// Convenience: fit on train, transform train/valid/test in place.
void standardize(TrainValidTest& splits);

}  // namespace agebo::data
