#include "data/arff.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace agebo::data {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string strip_quotes(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '\'' && s.back() == '\'') ||
                        (s.front() == '"' && s.back() == '"'))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

struct Attribute {
  std::string name;
  bool nominal = false;
  std::vector<std::string> values;  // nominal domain

  int value_index(const std::string& v) const {
    const auto it = std::find(values.begin(), values.end(), v);
    if (it == values.end()) return -1;
    return static_cast<int>(std::distance(values.begin(), it));
  }
};

Attribute parse_attribute(const std::string& rest) {
  // rest = "<name> <type>" where type is numeric/real/integer or {a,b,c}.
  Attribute attr;
  std::string body = trim(rest);
  // Attribute names may be quoted and contain spaces.
  std::size_t name_end;
  if (!body.empty() && (body[0] == '\'' || body[0] == '"')) {
    name_end = body.find(body[0], 1);
    if (name_end == std::string::npos) {
      throw std::runtime_error("read_arff: unterminated attribute name");
    }
    attr.name = body.substr(1, name_end - 1);
    ++name_end;
  } else {
    name_end = body.find_first_of(" \t");
    if (name_end == std::string::npos) {
      throw std::runtime_error("read_arff: attribute without type: " + body);
    }
    attr.name = body.substr(0, name_end);
  }
  std::string type = trim(body.substr(name_end));
  if (type.empty()) throw std::runtime_error("read_arff: missing type");

  if (type[0] == '{') {
    const auto close = type.find('}');
    if (close == std::string::npos) {
      throw std::runtime_error("read_arff: unterminated nominal domain");
    }
    attr.nominal = true;
    std::istringstream vs(type.substr(1, close - 1));
    std::string v;
    while (std::getline(vs, v, ',')) {
      attr.values.push_back(strip_quotes(trim(v)));
    }
    if (attr.values.empty()) {
      throw std::runtime_error("read_arff: empty nominal domain");
    }
  } else {
    const std::string t = lower(trim(type));
    if (t != "numeric" && t != "real" && t != "integer") {
      throw std::runtime_error("read_arff: unsupported type " + type);
    }
  }
  return attr;
}

}  // namespace

Dataset read_arff(std::istream& is, const ArffOptions& options) {
  std::vector<Attribute> attrs;
  std::string line;
  bool in_data = false;

  Dataset ds;
  std::size_t class_index = 0;

  while (std::getline(is, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '%') continue;

    if (!in_data && line[0] == '@') {
      const auto space_pos = line.find_first_of(" \t");
      const std::string keyword =
          lower(space_pos == std::string::npos ? line : line.substr(0, space_pos));
      if (keyword == "@relation") continue;
      if (keyword == "@attribute") {
        attrs.push_back(parse_attribute(line.substr(space_pos)));
        continue;
      }
      if (keyword == "@data") {
        if (attrs.size() < 2) {
          throw std::runtime_error("read_arff: need >= 2 attributes");
        }
        // Resolve the class attribute.
        class_index = attrs.size() - 1;
        if (!options.class_attribute.empty()) {
          bool found = false;
          for (std::size_t i = 0; i < attrs.size(); ++i) {
            if (attrs[i].name == options.class_attribute) {
              class_index = i;
              found = true;
              break;
            }
          }
          if (!found) {
            throw std::runtime_error("read_arff: class attribute not found: " +
                                     options.class_attribute);
          }
        }
        if (!attrs[class_index].nominal) {
          throw std::runtime_error("read_arff: class attribute must be nominal");
        }
        ds.n_features = attrs.size() - 1;
        ds.n_classes = attrs[class_index].values.size();
        in_data = true;
        continue;
      }
      throw std::runtime_error("read_arff: unknown directive " + line);
    }

    if (!in_data) {
      throw std::runtime_error("read_arff: data before @data: " + line);
    }

    // Data row (comma separated; sparse ARFF not supported).
    std::istringstream ls(line);
    std::string cell;
    std::size_t attr_idx = 0;
    int label = -1;
    std::vector<float> row;
    row.reserve(ds.n_features);
    while (std::getline(ls, cell, ',')) {
      if (attr_idx >= attrs.size()) {
        throw std::runtime_error("read_arff: too many columns: " + line);
      }
      cell = strip_quotes(trim(cell));
      const Attribute& attr = attrs[attr_idx];
      if (attr_idx == class_index) {
        label = attr.value_index(cell);
        if (label < 0) {
          throw std::runtime_error("read_arff: unknown class value " + cell);
        }
      } else if (attr.nominal) {
        const int v = cell == "?" ? 0 : attr.value_index(cell);
        if (v < 0) {
          throw std::runtime_error("read_arff: unknown nominal value " + cell);
        }
        row.push_back(static_cast<float>(v));
      } else {
        row.push_back(cell == "?" ? 0.0f : std::stof(cell));
      }
      ++attr_idx;
    }
    if (attr_idx != attrs.size() || label < 0) {
      throw std::runtime_error("read_arff: short row: " + line);
    }
    ds.x.insert(ds.x.end(), row.begin(), row.end());
    ds.y.push_back(label);
    ++ds.n_rows;
  }
  if (!in_data) throw std::runtime_error("read_arff: no @data section");
  ds.validate();
  return ds;
}

Dataset read_arff_file(const std::string& path, const ArffOptions& options) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_arff_file: cannot open " + path);
  return read_arff(is, options);
}

}  // namespace agebo::data
