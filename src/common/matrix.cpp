#include "common/matrix.hpp"

#include <stdexcept>

namespace agebo {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

std::vector<double> Matrix::col_means() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) means[c] += (*this)(r, c);
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::center_columns() {
  auto means = col_means();
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) -= means[c];
  }
  return means;
}

}  // namespace agebo
