#include "common/predictor.hpp"

#include <algorithm>

namespace agebo {

std::vector<int> predict_classes(const Predictor& p, const float* rows,
                                 std::size_t n) {
  const std::size_t c = p.output_dim();
  std::vector<float> proba(n * c);
  p.predict_batch(rows, n, proba.data());
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* r = proba.data() + i * c;
    out[i] = static_cast<int>(std::distance(r, std::max_element(r, r + c)));
  }
  return out;
}

std::vector<float> predict_proba(const Predictor& p, const float* row) {
  std::vector<float> out(p.output_dim());
  p.predict_batch(row, 1, out.data());
  return out;
}

}  // namespace agebo
