#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace agebo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty sample");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.stddev();
}

std::size_t argmax(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("argmax: empty sample");
  return static_cast<std::size_t>(
      std::distance(values.begin(), std::max_element(values.begin(), values.end())));
}

std::size_t argmin(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("argmin: empty sample");
  return static_cast<std::size_t>(
      std::distance(values.begin(), std::min_element(values.begin(), values.end())));
}

std::vector<std::size_t> argsort_desc(const std::vector<double>& values) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return values[a] > values[b];
  });
  return idx;
}

}  // namespace agebo
