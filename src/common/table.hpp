// ASCII table renderer used by bench binaries to print paper-style tables
// (Table I, II, III) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace agebo {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a header rule and column padding.
  std::string to_string() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace agebo
