// Shared CLI flag parsing for the repo's tools (agebo_campaign, agebo_train,
// agebo_serve). Replaces the per-tool copy-pasted argv loops, and fixes
// their divergent unknown-flag behaviour: every unknown or malformed flag is
// an error (diagnostic + usage, exit-worthy), never silently ignored.
//
// Usage:
//   common::ArgParser args(usage_text);
//   args.add_option("epochs");        // --epochs N   (value follows)
//   args.add_flag("arff");            // --arff       (boolean)
//   if (!args.parse(argc, argv)) return 2;   // prints diagnostic + usage
//   const auto epochs = args.get_size("epochs", 20);
//   if (args.flag("arff")) ...
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace agebo::common {

class ArgParser {
 public:
  /// `usage` is printed verbatim to stderr after any parse diagnostic.
  explicit ArgParser(std::string usage);

  /// Register `--name VALUE` (the next argv entry is consumed as value).
  /// `--name=VALUE` is accepted as an equivalent spelling.
  void add_option(const std::string& name);
  /// Register boolean `--name`.
  void add_flag(const std::string& name);

  /// Parse argv. On any unknown flag, missing value, stray positional
  /// argument, or `=value` attached to a boolean flag: print a diagnostic
  /// plus the usage text to stderr and return false. Re-specifying an
  /// option keeps the last value.
  bool parse(int argc, char** argv);

  /// True when --name was given (option or flag).
  bool has(const std::string& name) const;
  /// True when boolean --name was given.
  bool flag(const std::string& name) const { return has(name); }

  /// Raw option value, or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::size_t get_size(const std::string& name, std::size_t fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;

  void print_usage() const;

 private:
  enum class Kind { kOption, kFlag };

  std::string usage_;
  std::map<std::string, Kind> known_;
  std::map<std::string, std::string> values_;  // flags store ""
};

}  // namespace agebo::common
