// The unified inference contract of the repo (DESIGN.md §12): anything that
// can turn feature rows into class probabilities is a Predictor — the
// serving engine over a frozen GraphNet, every classical model in src/ml,
// and the AutoGluon-like baseline ensemble. The search stack produces
// Predictors; the serving stack (src/serve) consumes them.
//
// The contract is deliberately row-major and batched: `rows` is n x
// input_dim float32, `out` receives n x output_dim probabilities. Batch
// calls are what the kernel layer is fast at; per-row convenience wrappers
// build on top.
//
// Implementations may reuse internal scratch buffers across predict_batch
// calls (const is logical, not bitwise), so concurrent calls on one
// instance must be externally serialized — the serve::MicroBatcher provides
// exactly that serialization for the high-throughput path.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo {

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Feature count a row must have.
  virtual std::size_t input_dim() const = 0;
  /// Number of classes (probability vector width).
  virtual std::size_t output_dim() const = 0;

  /// Class probabilities for `n` row-major rows (n x input_dim) written to
  /// `out` (n x output_dim). Each output row sums to ~1.
  virtual void predict_batch(const float* rows, std::size_t n,
                             float* out) const = 0;
};

/// Argmax class per row of a predictor's output over `rows`.
std::vector<int> predict_classes(const Predictor& p, const float* rows,
                                 std::size_t n);

/// Probabilities for a single row (convenience wrapper over predict_batch).
std::vector<float> predict_proba(const Predictor& p, const float* row);

}  // namespace agebo
