// Deterministic, splittable random number generation for reproducible
// experiments. All stochastic components in the library draw from Rng so a
// single seed reproduces an entire search trajectory.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace agebo {

/// xoshiro256** PRNG. Fast, high quality, and trivially seedable from a
/// single 64-bit value (state expanded with splitmix64). Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Derive an independent child generator; used to hand each worker or
  /// component its own stream without sharing mutable state (CP.2).
  Rng split();

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Log-uniform real in [lo, hi); requires 0 < lo < hi. Matches the paper's
  /// sampling of the learning rate "in a log-uniform scale within BO".
  double log_uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Index into a non-empty container of size n, uniformly.
  std::size_t index(std::size_t n);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Sample k distinct indices from [0, n) uniformly (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// Raw generator state (xoshiro words plus the Box-Muller cache) for
  /// checkpointing: restoring a saved state reproduces the stream exactly,
  /// which is what makes a resumed search trajectory bit-identical to an
  /// uninterrupted one (DESIGN.md §14).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace agebo
