// Principal component analysis used to reproduce Fig 7: the paper projects
// the 37 architecture decisions and 3 data-parallel hyperparameters of the
// top-1% configurations to two dimensions and reports >80% conserved
// variance. Eigen-decomposition is done with the cyclic Jacobi method, which
// is exact enough for the small covariance matrices involved (<= ~320 dims
// after one-hot encoding).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"

namespace agebo {

struct PcaResult {
  /// Projected data, n_samples x n_components.
  Matrix projected;
  /// Component directions, n_components x n_features.
  Matrix components;
  /// Eigenvalues for the retained components, descending.
  std::vector<double> explained_variance;
  /// Fraction of total variance captured by each retained component.
  std::vector<double> explained_variance_ratio;

  /// Sum of the retained ratios (the paper's "conserved variance").
  double conserved_variance() const;
};

/// Symmetric eigen-decomposition via cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and matching eigenvectors as rows.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // n x n, row i is the eigenvector for values[i]
};
EigenResult jacobi_eigen_symmetric(Matrix a, int max_sweeps = 100);

/// Fit PCA on `data` (rows = samples) and project to n_components.
PcaResult pca(const Matrix& data, std::size_t n_components);

}  // namespace agebo
