// Small statistics helpers shared across the library: running moments,
// quantiles, and simple vector reductions used by search analysis code
// (Fig 5 / Fig 8 high-performer thresholds are 0.99-quantiles).
#pragma once

#include <cstddef>
#include <vector>

namespace agebo {

/// Numerically stable (Welford) running mean / variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample; q in [0, 1].
/// Throws on an empty sample.
double quantile(std::vector<double> values, double q);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Index of the maximum element; first occurrence wins. Throws on empty.
std::size_t argmax(const std::vector<double>& values);
std::size_t argmin(const std::vector<double>& values);

/// Indices that sort `values` descending (stable).
std::vector<std::size_t> argsort_desc(const std::vector<double>& values);

}  // namespace agebo
