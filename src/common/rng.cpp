#include "common/rng.hpp"

#include <cmath>

namespace agebo {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)()); }

double Rng::uniform(double lo, double hi) {
  // 53-bit mantissa construction for a uniform double in [0, 1).
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("log_uniform: requires 0 < lo < hi");
  }
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n - i) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng::State Rng::state() const {
  State st;
  for (std::size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& st) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = st.s[i];
  cached_normal_ = st.cached_normal;
  has_cached_normal_ = st.has_cached_normal;
}

}  // namespace agebo
