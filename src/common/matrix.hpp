// Minimal dense row-major matrix used by PCA and the classical ML module.
// The nn module has its own Tensor type tuned for training; this one is a
// plain numeric container for analysis code.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Row view copied into a vector.
  std::vector<double> row(std::size_t r) const;

  Matrix transpose() const;
  Matrix multiply(const Matrix& rhs) const;

  /// Column means.
  std::vector<double> col_means() const;

  /// Subtract per-column means in place; returns the means removed.
  std::vector<double> center_columns();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace agebo
