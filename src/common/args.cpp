#include "common/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace agebo::common {

ArgParser::ArgParser(std::string usage) : usage_(std::move(usage)) {}

void ArgParser::add_option(const std::string& name) {
  known_[name] = Kind::kOption;
}

void ArgParser::add_flag(const std::string& name) { known_[name] = Kind::kFlag; }

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0], arg);
      print_usage();
      return false;
    }
    std::string name = arg + 2;
    bool inline_value = false;
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      inline_value = true;
    }
    const auto it = known_.find(name);
    if (it == known_.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", argv[0], name.c_str());
      print_usage();
      return false;
    }
    if (it->second == Kind::kFlag) {
      if (inline_value) {
        std::fprintf(stderr, "%s: --%s is a boolean flag and takes no value\n",
                     argv[0], name.c_str());
        print_usage();
        return false;
      }
      values_[name] = "";
      continue;
    }
    if (inline_value) {
      values_[name] = value;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: --%s requires a value\n", argv[0],
                   name.c_str());
      print_usage();
      return false;
    }
    values_[name] = argv[++i];
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::size_t ArgParser::get_size(const std::string& name,
                                std::size_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const long long v = std::atoll(it->second.c_str());
  return v < 0 ? fallback : static_cast<std::size_t>(v);
}

std::uint64_t ArgParser::get_u64(const std::string& name,
                                 std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return static_cast<std::uint64_t>(std::atoll(it->second.c_str()));
}

void ArgParser::print_usage() const {
  std::fprintf(stderr, "%s", usage_.c_str());
}

}  // namespace agebo::common
