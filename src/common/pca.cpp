#include "common/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/stats.hpp"

namespace agebo {

double PcaResult::conserved_variance() const {
  return std::accumulate(explained_variance_ratio.begin(),
                         explained_variance_ratio.end(), 0.0);
}

EigenResult jacobi_eigen_symmetric(Matrix a, int max_sweeps) {
  const std::size_t n = a.rows();
  if (n != a.cols()) throw std::invalid_argument("jacobi: matrix not square");
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        // Stable computation of tan(theta) for the rotation angle.
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<double> evals(n);
  for (std::size_t i = 0; i < n; ++i) evals[i] = a(i, i);
  const auto order = argsort_desc(evals);

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = evals[order[i]];
    for (std::size_t k = 0; k < n; ++k) out.vectors(i, k) = v(k, order[i]);
  }
  return out;
}

PcaResult pca(const Matrix& data, std::size_t n_components) {
  if (data.rows() < 2) throw std::invalid_argument("pca: need >= 2 samples");
  const std::size_t d = data.cols();
  n_components = std::min(n_components, d);

  Matrix centered = data;
  centered.center_columns();

  // Covariance = X^T X / (n - 1).
  Matrix cov(d, d);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = centered(i, a);
      if (xa == 0.0) continue;
      for (std::size_t b = a; b < d; ++b) cov(a, b) += xa * centered(i, b);
    }
  }
  const double denom = static_cast<double>(data.rows() - 1);
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a; b < d; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }

  auto eig = jacobi_eigen_symmetric(cov);
  double total = 0.0;
  for (double ev : eig.values) total += std::max(ev, 0.0);

  PcaResult out;
  out.components = Matrix(n_components, d);
  out.explained_variance.resize(n_components);
  out.explained_variance_ratio.resize(n_components);
  for (std::size_t c = 0; c < n_components; ++c) {
    out.explained_variance[c] = std::max(eig.values[c], 0.0);
    out.explained_variance_ratio[c] =
        total > 0.0 ? out.explained_variance[c] / total : 0.0;
    for (std::size_t k = 0; k < d; ++k) out.components(c, k) = eig.vectors(c, k);
  }

  out.projected = Matrix(data.rows(), n_components);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t c = 0; c < n_components; ++c) {
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) dot += centered(i, k) * out.components(c, k);
      out.projected(i, c) = dot;
    }
  }
  return out;
}

}  // namespace agebo
