#include "nn/graph_net.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "nn/kernels/gemm.hpp"

namespace agebo::nn {

void GraphSpec::validate() const {
  if (input_dim == 0 || output_dim == 0) {
    throw std::invalid_argument("GraphSpec: zero input/output dim");
  }
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    for (std::size_t s : nodes[k].skips) {
      // Target node id is k+1 (1-based); source must be strictly earlier
      // than the base node k, i.e. a *non-consecutive* predecessor.
      if (s >= k) {
        throw std::invalid_argument("GraphSpec: skip source not earlier than base");
      }
    }
    if (!nodes[k].is_identity && nodes[k].units == 0) {
      throw std::invalid_argument("GraphSpec: zero-width dense node");
    }
  }
  for (std::size_t s : output_skips) {
    if (s >= nodes.size()) {
      throw std::invalid_argument("GraphSpec: output skip source out of range");
    }
  }
}

GraphNet::Combine GraphNet::make_combine(const std::vector<std::size_t>& skips,
                                         std::size_t base_dim, Rng& rng) {
  Combine c;
  for (std::size_t src : skips) {
    SkipEdge edge{src, std::nullopt};
    if (dims_[src] != base_dim) {
      edge.proj.emplace(dims_[src], base_dim, /*use_bias=*/false, rng);
    }
    c.edges.push_back(std::move(edge));
  }
  return c;
}

GraphNet::GraphNet(GraphSpec spec, Rng& rng) : spec_(std::move(spec)) {
  spec_.validate();
  const std::size_t m = spec_.nodes.size();
  dims_.resize(m + 1);
  dims_[0] = spec_.input_dim;

  node_dense_.resize(m);
  node_combine_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const NodeSpec& ns = spec_.nodes[k];
    // Base into node k+1 is the output of node k (id k in dims_).
    node_combine_[k] = make_combine(ns.skips, dims_[k], rng);
    if (ns.is_identity) {
      dims_[k + 1] = dims_[k];
    } else {
      node_dense_[k].emplace(dims_[k], ns.units, /*use_bias=*/true, rng);
      dims_[k + 1] = ns.units;
    }
  }
  output_combine_ = make_combine(spec_.output_skips, dims_[m], rng);
  output_dense_ = std::make_unique<DenseLayer>(dims_[m], spec_.output_dim,
                                               /*use_bias=*/true, rng);

  outs_.resize(m + 1);
  pre_act_.resize(m);
  grad_outs_.resize(m + 1);

  // params() index ranges per layer, in params() emission order. Counting
  // here must mirror params(): combine projections (1 block each, no bias)
  // before the node's dense (W + b), output combine then output readout.
  auto proj_blocks = [](const Combine& c) {
    std::size_t n = 0;
    for (const auto& e : c.edges) n += e.proj.has_value() ? 1 : 0;
    return n;
  };
  std::size_t at = 0;
  node_proj_range_.resize(m);
  node_dense_range_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    node_proj_range_[k] = {at, at + proj_blocks(node_combine_[k])};
    at = node_proj_range_[k].second;
    node_dense_range_[k] = {at, at + (node_dense_[k].has_value() ? 2 : 0)};
    at = node_dense_range_[k].second;
  }
  output_proj_range_ = {at, at + proj_blocks(output_combine_)};
  at = output_proj_range_.second;
  output_dense_range_ = {at, at + 2};
}

void GraphNet::combine_forward(Combine& c, const Tensor& base,
                               const std::vector<Tensor>& outs,
                               Tensor& combined) {
  c.sum_pre_relu = base;
  for (auto& edge : c.edges) {
    if (edge.proj.has_value()) {
      // Projection GEMM accumulates straight into the sum: no per-edge
      // `projected` temporary, no separate add pass.
      edge.proj->forward_add(outs[edge.src], c.sum_pre_relu);
    } else {
      add_inplace(c.sum_pre_relu, outs[edge.src]);
    }
  }
  apply_activation(Activation::kRelu, c.sum_pre_relu, combined);
}

void GraphNet::combine_backward(Combine& c, const Tensor& d_combined,
                                std::vector<Tensor>& grad_outs,
                                std::size_t base_id) {
  // d_sum = d_combined ⊙ relu'(sum_pre_relu), fused (replaces the old
  // copy + in-place gradient pass).
  ensure_shape(c.d_sum, d_combined.rows, d_combined.cols);
  kernels::act_grad_mul(Activation::kRelu, c.sum_pre_relu.v.data(),
                        d_combined.v.data(), c.d_sum.v.data(),
                        c.d_sum.v.size());
  add_inplace(grad_outs[base_id], c.d_sum);
  for (auto& edge : c.edges) {
    if (edge.proj.has_value()) {
      // dx of the projection accumulates into the source's gradient
      // buffer inside the backward GEMM.
      edge.proj->backward_add(c.d_sum, grad_outs[edge.src]);
    } else {
      add_inplace(grad_outs[edge.src], c.d_sum);
    }
  }
}

const Tensor& GraphNet::forward(const Tensor& x) {
  if (x.cols != spec_.input_dim) throw std::invalid_argument("GraphNet::forward: dim");
  const std::size_t m = spec_.nodes.size();
  outs_[0] = x;

  for (std::size_t k = 0; k < m; ++k) {
    const Tensor* node_input = &outs_[k];
    if (node_combine_[k].active()) {
      combine_forward(node_combine_[k], outs_[k], outs_, combine_buf_);
      node_input = &combine_buf_;
    }
    if (spec_.nodes[k].is_identity) {
      outs_[k + 1] = *node_input;  // capacity-reusing copy
    } else {
      // Fused GEMM: bias + activation in the epilogue, pre-activation
      // stored alongside for backward.
      node_dense_[k]->forward_act(*node_input, spec_.nodes[k].act,
                                  pre_act_[k], outs_[k + 1]);
    }
  }

  const Tensor* readout_input = &outs_[m];
  if (output_combine_.active()) {
    combine_forward(output_combine_, outs_[m], outs_, combine_buf_);
    readout_input = &combine_buf_;
  }
  output_dense_->forward(*readout_input, logits_);
  return logits_;
}

void GraphNet::backward(const Tensor& dlogits) {
  const std::size_t m = spec_.nodes.size();
  for (std::size_t k = 0; k <= m; ++k) {
    ensure_shape(grad_outs_[k], outs_[k].rows, outs_[k].cols);
    std::fill(grad_outs_[k].v.begin(), grad_outs_[k].v.end(), 0.0f);
  }

  output_dense_->backward(dlogits, d_input_buf_);
  fire_grad_ready(output_dense_range_);
  if (output_combine_.active()) {
    combine_backward(output_combine_, d_input_buf_, grad_outs_, m);
    fire_grad_ready(output_proj_range_);
  } else {
    add_inplace(grad_outs_[m], d_input_buf_);
  }

  for (std::size_t k = m; k-- > 0;) {
    const Tensor* d_node_input;
    if (spec_.nodes[k].is_identity) {
      d_node_input = &grad_outs_[k + 1];
    } else {
      // dz = grad_out ⊙ act'(pre_act): fused, out-of-place (the old path
      // copied the gradient and then scaled it in place).
      ensure_shape(dz_buf_, grad_outs_[k + 1].rows, grad_outs_[k + 1].cols);
      kernels::act_grad_mul(spec_.nodes[k].act, pre_act_[k].v.data(),
                            grad_outs_[k + 1].v.data(), dz_buf_.v.data(),
                            dz_buf_.v.size());
      node_dense_[k]->backward(dz_buf_, d_input_buf_);
      fire_grad_ready(node_dense_range_[k]);
      d_node_input = &d_input_buf_;
    }
    if (node_combine_[k].active()) {
      combine_backward(node_combine_[k], *d_node_input, grad_outs_, k);
      fire_grad_ready(node_proj_range_[k]);
    } else {
      add_inplace(grad_outs_[k], *d_node_input);
    }
  }
}

void GraphNet::zero_grad() {
  for (auto& d : node_dense_) {
    if (d.has_value()) d->zero_grad();
  }
  auto zero_combine = [](Combine& c) {
    for (auto& e : c.edges) {
      if (e.proj.has_value()) e.proj->zero_grad();
    }
  };
  for (auto& c : node_combine_) zero_combine(c);
  zero_combine(output_combine_);
  output_dense_->zero_grad();
}

std::vector<ParamRef> GraphNet::params() {
  std::vector<ParamRef> out;
  auto append = [&out](std::vector<ParamRef> refs) {
    out.insert(out.end(), refs.begin(), refs.end());
  };
  auto append_combine = [&](Combine& c) {
    for (auto& e : c.edges) {
      if (e.proj.has_value()) append(e.proj->params());
    }
  };
  for (std::size_t k = 0; k < node_dense_.size(); ++k) {
    append_combine(node_combine_[k]);
    if (node_dense_[k].has_value()) append(node_dense_[k]->params());
  }
  append_combine(output_combine_);
  append(output_dense_->params());
  return out;
}

std::size_t GraphNet::num_params() const {
  std::size_t n = 0;
  auto count_combine = [&n](const Combine& c) {
    for (const auto& e : c.edges) {
      if (e.proj.has_value()) n += e.proj->num_params();
    }
  };
  for (std::size_t k = 0; k < node_dense_.size(); ++k) {
    count_combine(node_combine_[k]);
    if (node_dense_[k].has_value()) n += node_dense_[k]->num_params();
  }
  count_combine(output_combine_);
  n += output_dense_->num_params();
  return n;
}

std::string GraphNet::describe() const {
  std::ostringstream os;
  os << "Input(" << spec_.input_dim << ")\n";
  for (std::size_t k = 0; k < spec_.nodes.size(); ++k) {
    const NodeSpec& ns = spec_.nodes[k];
    os << "N" << (k + 1) << ": ";
    if (ns.is_identity) {
      os << "Identity";
    } else {
      os << "Dense(" << ns.units << ", " << to_string(ns.act) << ")";
    }
    if (!ns.skips.empty()) {
      os << "  <- skips from {";
      for (std::size_t i = 0; i < ns.skips.size(); ++i) {
        os << (i ? ", " : "") << "N" << ns.skips[i];
      }
      os << "} (proj+sum+relu)";
    }
    os << '\n';
  }
  os << "Output: Dense(" << spec_.output_dim << ", softmax)";
  if (!spec_.output_skips.empty()) {
    os << "  <- skips from {";
    for (std::size_t i = 0; i < spec_.output_skips.size(); ++i) {
      os << (i ? ", " : "") << "N" << spec_.output_skips[i];
    }
    os << "}";
  }
  os << "\nparameters: " << num_params() << '\n';
  return os.str();
}

}  // namespace agebo::nn
