// Post-training quantization for the serving fast path (DESIGN.md §13).
//
// Scheme (chosen so the int8 kernels in kernels/gemm_s8.hpp are exact and
// ISA-independent, see that header):
//   - Weights: symmetric per-output-column s8. Column j of a (k x n)
//     weight matrix gets scale w_scale[j] = maxabs_j / 127 and values
//     wq = clamp(round(w / w_scale[j]), -127, 127). Per-column scales cost
//     n floats and recover most of the accuracy a single per-tensor scale
//     loses on layers with uneven column magnitudes.
//   - Activations: per-tensor affine u8 restricted to [0, 127] (7 bits +
//     zero point). From a calibrated [lo, hi] range (widened to include 0
//     so real 0.0 maps to an exact grid point — padding and ReLU zeros
//     stay exact): scale = (hi - lo) / 127, zp = round(-lo / scale).
//
// The calibration pass itself (which layer sees which range) needs a
// forward pass and therefore lives with the inference engine
// (serve::quantize_artifact); this module owns the pure math and the
// artifact-side data (QuantLayer, serialized as the v3 `quant` section).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace agebo::nn {

/// Per-tensor affine activation quantization: u8 q in [0, 127] represents
/// real value (q - zero_point) * scale.
struct ActQuant {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// One quantized GEMM operand in a ModelArtifact: the s8 weights of a
/// dense op plus the scales needed to run it through gemm_u8s8. `index`
/// identifies the op in quantizable order: dense nodes by node position,
/// then the readout. Serialized as the v3 `quant` section.
struct QuantLayer {
  std::size_t index = 0;
  std::size_t rows = 0;  // k: input width
  std::size_t cols = 0;  // n: output width
  ActQuant input;        // quantization of this op's fp32 input rows
  std::vector<float> w_scales;   // per-column, length cols
  std::vector<std::int8_t> wq;   // rows x cols, row-major
};

/// Activation quantization from a calibrated value range. Handles
/// degenerate (empty or single-point) ranges.
ActQuant act_quant_from_range(float lo, float hi);

/// Symmetric per-column weight quantization of a row-major (rows x cols)
/// fp32 matrix. Fills ql.rows/cols/w_scales/wq; ql.index and ql.input are
/// the caller's business.
void quantize_weights_per_col(const float* w, std::size_t rows,
                              std::size_t cols, QuantLayer& ql);

/// Zero-point compensation vector for gemm_u8s8: comp[j] =
/// zero_point * sum_k wq[k][j].
std::vector<std::int32_t> zero_point_compensation(const QuantLayer& ql);

/// Combined dequantization scales for gemm_u8s8: dq[j] =
/// input.scale * w_scales[j].
std::vector<float> dequant_scales(const QuantLayer& ql);

}  // namespace agebo::nn
