// The fully connected network-with-skip-connections family of Sec III-A.
//
// A GraphSpec describes one concrete architecture: a chain of variable
// nodes (each a Dense(units, activation) op or the identity op) plus skip
// connections into later nodes. Following the paper, the input of node
// N_{k+1} is the output of N_k; when skip-connection nodes choose
// `identity`, the outputs of earlier nodes are passed through a linear
// projection (to match widths), element-wise summed with N_k's output, and
// the sum is passed through ReLU before feeding N_{k+1}. The output node is
// a Dense(n_classes) readout that can itself receive three skips.
//
// The NAS module (src/nas) turns a 37-decision genome into a GraphSpec;
// this file owns only the numerical network.
//
// Hot-path layout: every per-step buffer (node outputs, pre-activations,
// gradient accumulators, combine scratch) is a persistent member reused
// across steps, and the dense ops run through the fused kernel-layer entry
// points (bias+activation in the forward GEMM, activation-gradient fused
// into the backward staging, projections accumulating in place), so a
// training step performs no allocations and no extra elementwise passes
// after the first batch.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/tensor.hpp"

namespace agebo::nn {

/// One variable node of the chain.
struct NodeSpec {
  /// True for the identity op (the 31st layer type): pass input through.
  bool is_identity = false;
  std::size_t units = 16;
  Activation act = Activation::kRelu;
  /// Earlier nodes skip-connected into this node's input combination.
  /// Node id 0 is the network input; id k is variable node k (1-based).
  std::vector<std::size_t> skips;
};

struct GraphSpec {
  std::size_t input_dim = 0;
  std::size_t output_dim = 0;  // number of classes (logit width)
  std::vector<NodeSpec> nodes;
  /// Skips into the output node (same id convention).
  std::vector<std::size_t> output_skips;

  /// Throws std::invalid_argument when a skip references a node that is not
  /// strictly earlier than its target or ids are out of range.
  void validate() const;
};

class GraphNet {
 public:
  GraphNet(GraphSpec spec, Rng& rng);

  const GraphSpec& spec() const { return spec_; }

  /// Forward pass; returns logits (batch x output_dim). Caches
  /// intermediate state for a following backward().
  const Tensor& forward(const Tensor& x);

  /// Backward from dL/dlogits; accumulates parameter gradients.
  void backward(const Tensor& dlogits);

  void zero_grad();
  std::vector<ParamRef> params();
  std::size_t num_params() const;

  /// Called from backward() with a half-open range [begin, end) of params()
  /// indices whose gradients just received their final contribution for
  /// this step. Each layer's blocks are contiguous in params() order, and
  /// each block's gradient is written at exactly one point of the backward
  /// sweep (dense layers by their own backward GEMM, skip projections by
  /// their combine's backward), so ranges fire output-layer-first and cover
  /// every block exactly once per backward. The data-parallel trainer hooks
  /// this to overlap gradient allreduce with the rest of backprop.
  using GradReadyHook = std::function<void(std::size_t, std::size_t)>;
  void set_grad_ready_hook(GradReadyHook hook) {
    grad_hook_ = std::move(hook);
  }

  /// Human-readable structure dump (quickstart prints one; cf. Fig 1).
  std::string describe() const;

 private:
  struct SkipEdge {
    std::size_t src;
    /// Projection when source width != base width; nullopt for identity map.
    std::optional<DenseLayer> proj;
  };
  /// Runtime state for the input-combination of one target (node or output).
  struct Combine {
    std::vector<SkipEdge> edges;
    bool active() const { return !edges.empty(); }
    Tensor sum_pre_relu;  // forward cache
    Tensor d_sum;         // backward scratch (reused across steps)
  };

  /// Build the combine struct for `skips` targeting a base of width
  /// `base_dim`, given per-node output widths.
  Combine make_combine(const std::vector<std::size_t>& skips,
                       std::size_t base_dim, Rng& rng);
  /// Forward the combination: base + sum of (projected) skip sources,
  /// then ReLU. Projections accumulate straight into the sum buffer.
  void combine_forward(Combine& c, const Tensor& base,
                       const std::vector<Tensor>& outs, Tensor& combined);
  /// Backward through a combination; adds source grads into `grad_outs`.
  void combine_backward(Combine& c, const Tensor& d_combined,
                        std::vector<Tensor>& grad_outs, std::size_t base_id);

  /// [begin, end) params() indices for one layer's blocks (empty when
  /// begin == end, e.g. identity nodes or skip-free combines).
  using BlockRange = std::pair<std::size_t, std::size_t>;
  void fire_grad_ready(const BlockRange& range) {
    if (grad_hook_ && range.first < range.second) {
      grad_hook_(range.first, range.second);
    }
  }

  GraphSpec spec_;
  std::vector<std::size_t> dims_;  // dims_[k] = width of node k output (0 = input)
  std::vector<std::optional<DenseLayer>> node_dense_;  // per variable node
  std::vector<Combine> node_combine_;                  // per variable node
  Combine output_combine_;
  std::unique_ptr<DenseLayer> output_dense_;

  // Forward caches.
  std::vector<Tensor> outs_;      // node outputs, outs_[0] = input
  std::vector<Tensor> pre_act_;   // dense pre-activations per node
  Tensor logits_;
  Tensor combine_buf_;            // combined node input when skips are active

  // Backward scratch, persistent so repeated steps reuse capacity.
  std::vector<Tensor> grad_outs_;
  Tensor dz_buf_;                 // act-grad-fused dL/dz of the current node
  Tensor d_input_buf_;            // dL/d(node input) staging

  // Gradient-ready bookkeeping: params() index ranges per layer, computed
  // once in the constructor (params() order is fixed at construction).
  GradReadyHook grad_hook_;
  std::vector<BlockRange> node_proj_range_;   // node_combine_[k] projections
  std::vector<BlockRange> node_dense_range_;  // node_dense_[k] W (+ b)
  BlockRange output_proj_range_{0, 0};
  BlockRange output_dense_range_{0, 0};
};

}  // namespace agebo::nn
