// Learning-rate schedules from the paper's training recipe (Sec IV):
// - GradualWarmup (Goyal et al.): ramp linearly from the single-process
//   learning rate to the scaled target over the first 5 epochs, which is
//   what makes the linear scaling rule stable at larger n.
// - ReduceLROnPlateau: multiply the LR by `factor` when the monitored
//   validation metric has not improved for `patience` epochs.
#pragma once

#include <cstddef>

namespace agebo::nn {

class GradualWarmup {
 public:
  /// Ramps from `base_lr` to `target_lr` across `warmup_epochs` epochs,
  /// then holds `target_lr`.
  GradualWarmup(double base_lr, double target_lr, std::size_t warmup_epochs);

  /// Learning rate for a given 0-based epoch.
  double lr_for_epoch(std::size_t epoch) const;

  std::size_t warmup_epochs() const { return warmup_epochs_; }

 private:
  double base_lr_;
  double target_lr_;
  std::size_t warmup_epochs_;
};

class ReduceLROnPlateau {
 public:
  /// Monitors a maximized metric (validation accuracy). When no epoch in the
  /// last `patience` beats the best seen (by > min_delta), scale the LR.
  ReduceLROnPlateau(std::size_t patience, double factor = 0.5,
                    double min_delta = 1e-4, double min_lr = 1e-6);

  /// Feed the epoch-end metric; returns the new LR given `current_lr`.
  double update(double metric, double current_lr);

  std::size_t num_reductions() const { return reductions_; }

 private:
  std::size_t patience_;
  double factor_;
  double min_delta_;
  double min_lr_;
  double best_ = -1e300;
  std::size_t epochs_since_best_ = 0;
  std::size_t reductions_ = 0;
};

}  // namespace agebo::nn
