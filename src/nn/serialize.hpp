// Model persistence: freeze a trained GraphNet (architecture decisions +
// weights) into a versioned on-disk artifact, so a search's winning model
// can be deployed by the serving stack (src/serve) or re-evaluated later
// without retraining — and loaded without the search/training stack.
//
// Artifact format v2/v3 (line oriented, DESIGN.md §12–13):
//   agebo-graphnet v3
//   meta <count>
//   kv <key> <value...>                                     (x count)
//   input <dim> output <dim>
//   nodes <m>
//   node <identity|dense> [units act] skips <k> [ids...]    (x m)
//   output_skips <k> [ids...]
//   params <n_blocks>
//   block <len> followed by <len> whitespace-separated floats
//   quant <n_qlayers>                                       (v3 only)
//   qlayer <index> <rows> <cols> <zero_point> <act_scale>   (x n_qlayers)
//   wscales <cols floats>
//   wq <rows*cols whitespace-separated ints in [-127, 127]>
//   checksum <fnv1a64-hex>
//
// Floats are printed with 9 significant digits (FLT_DECIMAL_DIG), so a
// save → load round trip reproduces every weight bit-exactly. The checksum
// covers every byte before its own line: a truncated or corrupted artifact
// fails load with a clear error instead of silently mis-predicting.
// Artifacts without a quant section are written as v2 (so fp32-only models
// stay loadable by older readers); the v1 format (no meta section, no
// checksum) and v2 are still loadable.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/graph_net.hpp"
#include "nn/quant.hpp"

namespace agebo::nn {

/// A frozen model: architecture + parameter blocks in params() order, plus
/// free-form provenance metadata. This is the serving contract — the
/// inference engine consumes it directly, with no Rng, no gradient buffers,
/// and no trainer in sight.
struct ModelArtifact {
  GraphSpec spec;
  /// One entry per ParamRef of the source network, in params() order.
  std::vector<std::vector<float>> blocks;
  /// Provenance key/value pairs (e.g. tool, dataset, valid accuracy).
  std::vector<std::pair<std::string, std::string>> metadata;
  /// Optional int8 serving data, one entry per quantizable GEMM in graph
  /// traversal order: for each node, its skip-projection edges (in edge
  /// order) then its dense op; then the output skip projections; then the
  /// readout (see serve::quantize_artifact). Non-empty ⇒ the artifact
  /// saves as v3 and can serve in int8 mode.
  std::vector<QuantLayer> quant;

  /// First metadata value for `key`, or "" when absent.
  std::string meta(const std::string& key) const;
  /// True when a v3 quant section is present (int8 serving possible).
  bool has_quant() const { return !quant.empty(); }
};

/// Snapshot `net` into an artifact (weights are copied).
ModelArtifact freeze_graphnet(
    GraphNet& net,
    std::vector<std::pair<std::string, std::string>> metadata = {});

/// Rebuild a trainable network from an artifact (spec + weights).
std::unique_ptr<GraphNet> instantiate_graphnet(const ModelArtifact& artifact);

void save_artifact(const ModelArtifact& artifact, std::ostream& os);
void save_artifact_file(const ModelArtifact& artifact, const std::string& path);

/// Parses v1, v2, or v3; verifies the v2/v3 checksum. Throws
/// std::runtime_error with a precise message on malformed, truncated, or
/// corrupted input.
ModelArtifact load_artifact(std::istream& is);
ModelArtifact load_artifact_file(const std::string& path);

/// Convenience wrappers: freeze + save / load + instantiate.
void save_graphnet(GraphNet& net, std::ostream& os);
void save_graphnet_file(GraphNet& net, const std::string& path);
std::unique_ptr<GraphNet> load_graphnet(std::istream& is);
std::unique_ptr<GraphNet> load_graphnet_file(const std::string& path);

}  // namespace agebo::nn
