// Model persistence: save/load a trained GraphNet (spec + weights) to a
// self-describing text format, so a search's winning model can be deployed
// or re-evaluated later without retraining.
//
// Format (line oriented):
//   agebo-graphnet v1
//   input <dim> output <dim>
//   nodes <m>
//   node <identity|dense> [units act] skips <k> [ids...]   (x m)
//   output_skips <k> [ids...]
//   params <n_blocks>
//   block <len> followed by <len> whitespace-separated floats
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nn/graph_net.hpp"

namespace agebo::nn {

void save_graphnet(GraphNet& net, std::ostream& os);
void save_graphnet_file(GraphNet& net, const std::string& path);

/// Reconstructs the network (spec + weights). Throws std::runtime_error on
/// malformed input or parameter-shape mismatch.
std::unique_ptr<GraphNet> load_graphnet(std::istream& is);
std::unique_ptr<GraphNet> load_graphnet_file(const std::string& path);

}  // namespace agebo::nn
