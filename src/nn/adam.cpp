#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::nn {

Adam::Adam(std::vector<ParamRef> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    if (p.values->size() != p.grads->size()) {
      throw std::invalid_argument("Adam: value/grad size mismatch");
    }
    m_.emplace_back(p.values->size(), 0.0f);
    v_.emplace_back(p.values->size(), 0.0f);
  }
}

double clip_gradients(const std::vector<ParamRef>& params, double max_norm) {
  double sq = 0.0;
  for (const auto& p : params) {
    for (float g : *p.grads) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (max_norm > 0.0 && norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (const auto& p : params) {
      for (float& g : *p.grads) g *= scale;
    }
  }
  return norm;
}

void Adam::step() {
  ++t_;
  const double b1t = 1.0 - std::pow(cfg_.beta1, t_);
  const double b2t = 1.0 - std::pow(cfg_.beta2, t_);
  const auto beta1 = static_cast<float>(cfg_.beta1);
  const auto beta2 = static_cast<float>(cfg_.beta2);
  for (std::size_t p = 0; p < params_.size(); ++p) {
    auto& values = *params_[p].values;
    const auto& grads = *params_[p].grads;
    auto& m = m_[p];
    auto& v = v_[p];
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float g = grads[i];
      m[i] = beta1 * m[i] + (1.0f - beta1) * g;
      v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
      const double mhat = m[i] / b1t;
      const double vhat = v[i] / b2t;
      double update = cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
      if (cfg_.weight_decay > 0.0) {
        update += cfg_.lr * cfg_.weight_decay * values[i];  // AdamW
      }
      values[i] -= static_cast<float>(update);
    }
  }
}

}  // namespace agebo::nn
