// Adam optimizer (Kingma & Ba) over a set of ParamRef blocks — the paper's
// training optimizer (Sec IV). The learning rate is mutable between steps so
// schedules (warmup, reduce-on-plateau) can drive it.
#pragma once

#include <vector>

#include "nn/dense.hpp"

namespace agebo::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Decoupled weight decay (AdamW); 0 disables.
  double weight_decay = 0.0;
};

/// Scale all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm. No-op (returns the norm) when already within
/// bounds or max_norm <= 0.
double clip_gradients(const std::vector<ParamRef>& params, double max_norm);

class Adam {
 public:
  Adam(std::vector<ParamRef> params, AdamConfig cfg);

  /// Apply one update from the currently accumulated gradients.
  void step();

  double learning_rate() const { return cfg_.lr; }
  void set_learning_rate(double lr) { cfg_.lr = lr; }
  long step_count() const { return t_; }

 private:
  std::vector<ParamRef> params_;
  AdamConfig cfg_;
  long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace agebo::nn
