// The five activation functions of the paper's dense-layer search space
// (Sec III-A): {Identity, Swish, ReLU, Tanh, Sigmoid}.
#pragma once

#include <string>

#include "nn/tensor.hpp"

namespace agebo::nn {

enum class Activation { kIdentity, kSwish, kRelu, kTanh, kSigmoid };

inline constexpr int kNumActivations = 5;

std::string to_string(Activation a);
Activation activation_from_index(int i);

/// out[i] = f(z[i]).
void apply_activation(Activation a, const Tensor& z, Tensor& out);

/// grad[i] *= f'(z[i]) where z is the pre-activation input.
/// (Swish/sigmoid derivatives are computed from z directly.)
void apply_activation_grad(Activation a, const Tensor& z, Tensor& grad);

float activate_scalar(Activation a, float z);
float activate_grad_scalar(Activation a, float z);

}  // namespace agebo::nn
