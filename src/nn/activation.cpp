#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::nn {

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kSwish: return "swish";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "?";
}

Activation activation_from_index(int i) {
  if (i < 0 || i >= kNumActivations) {
    throw std::out_of_range("activation_from_index");
  }
  return static_cast<Activation>(i);
}

namespace {

float sigmoidf(float z) { return 1.0f / (1.0f + std::exp(-z)); }

}  // namespace

float activate_scalar(Activation a, float z) {
  switch (a) {
    case Activation::kIdentity: return z;
    case Activation::kSwish: return z * sigmoidf(z);
    case Activation::kRelu: return z > 0.0f ? z : 0.0f;
    case Activation::kTanh: return std::tanh(z);
    case Activation::kSigmoid: return sigmoidf(z);
  }
  return z;
}

float activate_grad_scalar(Activation a, float z) {
  switch (a) {
    case Activation::kIdentity:
      return 1.0f;
    case Activation::kSwish: {
      const float s = sigmoidf(z);
      return s + z * s * (1.0f - s);
    }
    case Activation::kRelu:
      return z > 0.0f ? 1.0f : 0.0f;
    case Activation::kTanh: {
      const float t = std::tanh(z);
      return 1.0f - t * t;
    }
    case Activation::kSigmoid: {
      const float s = sigmoidf(z);
      return s * (1.0f - s);
    }
  }
  return 1.0f;
}

void apply_activation(Activation a, const Tensor& z, Tensor& out) {
  out.rows = z.rows;
  out.cols = z.cols;
  out.v.resize(z.v.size());
  for (std::size_t i = 0; i < z.v.size(); ++i) {
    out.v[i] = activate_scalar(a, z.v[i]);
  }
}

void apply_activation_grad(Activation a, const Tensor& z, Tensor& grad) {
  if (!z.same_shape(grad)) {
    throw std::invalid_argument("apply_activation_grad: shape mismatch");
  }
  if (a == Activation::kIdentity) return;
  for (std::size_t i = 0; i < z.v.size(); ++i) {
    grad.v[i] *= activate_grad_scalar(a, z.v[i]);
  }
}

}  // namespace agebo::nn
