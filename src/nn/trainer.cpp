#include "nn/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/span.hpp"

namespace agebo::nn {

void batch_from(const data::Dataset& ds, const std::vector<std::size_t>& order,
                std::size_t begin, std::size_t end, Tensor& x,
                std::vector<int>& y) {
  if (end > order.size() || begin >= end) {
    throw std::invalid_argument("batch_from: bad range");
  }
  const std::size_t n = end - begin;
  x.rows = n;
  x.cols = ds.n_features;
  x.v.resize(n * ds.n_features);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = order[begin + i];
    const float* src = ds.row(r);
    std::copy(src, src + ds.n_features, x.v.data() + i * ds.n_features);
    y[i] = ds.y[r];
  }
}

double evaluate_accuracy(GraphNet& net, const data::Dataset& ds,
                         std::size_t batch_size) {
  if (ds.n_rows == 0) throw std::invalid_argument("evaluate_accuracy: empty");
  std::vector<std::size_t> order(ds.n_rows);
  for (std::size_t i = 0; i < ds.n_rows; ++i) order[i] = i;

  std::size_t correct_weighted = 0;
  Tensor x;
  std::vector<int> y;
  for (std::size_t begin = 0; begin < ds.n_rows; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, ds.n_rows);
    batch_from(ds, order, begin, end, x, y);
    const Tensor& logits = net.forward(x);
    correct_weighted += static_cast<std::size_t>(
        accuracy(logits, y) * static_cast<double>(end - begin) + 0.5);
  }
  return static_cast<double>(correct_weighted) / static_cast<double>(ds.n_rows);
}

TrainResult train(GraphNet& net, const data::Dataset& train_set,
                  const data::Dataset& valid_set, const TrainConfig& cfg) {
  if (cfg.batch_size == 0) throw std::invalid_argument("train: zero batch size");
  if (cfg.warmup_div < 1.0) throw std::invalid_argument("train: warmup_div < 1");

  Rng rng(cfg.seed);
  auto params = net.params();
  Adam opt(params, AdamConfig{cfg.lr, 0.9, 0.999, 1e-8, cfg.weight_decay});
  GradualWarmup warmup(cfg.lr / cfg.warmup_div, cfg.lr, cfg.warmup_epochs);
  ReduceLROnPlateau plateau(cfg.plateau_patience, cfg.plateau_factor);

  std::vector<std::size_t> order(train_set.n_rows);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainResult result;
  double post_warmup_lr = cfg.lr;
  Tensor x;
  std::vector<int> y;
  Tensor dlogits;

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    OBS_SPAN("nn.epoch", {{"epoch", std::to_string(epoch)}});
    // Warmup drives the LR during the ramp; plateau owns it afterwards.
    double lr = (epoch < cfg.warmup_epochs && cfg.warmup_div > 1.0)
                    ? warmup.lr_for_epoch(epoch)
                    : post_warmup_lr;
    opt.set_learning_rate(lr);

    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < train_set.n_rows; begin += cfg.batch_size) {
      const std::size_t end = std::min(begin + cfg.batch_size, train_set.n_rows);
      batch_from(train_set, order, begin, end, x, y);
      const Tensor& logits = net.forward(x);
      net.zero_grad();
      loss_sum += softmax_cross_entropy(logits, y, dlogits);
      net.backward(dlogits);
      if (cfg.grad_clip_norm > 0.0) clip_gradients(params, cfg.grad_clip_norm);
      opt.step();
      ++batches;
    }

    const double valid_acc = evaluate_accuracy(net, valid_set);
    if (epoch >= cfg.warmup_epochs || cfg.warmup_div <= 1.0) {
      post_warmup_lr = plateau.update(valid_acc, lr);
    }

    EpochStats stats;
    stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    stats.valid_accuracy = valid_acc;
    stats.learning_rate = lr;
    result.epochs.push_back(stats);
    result.best_valid_accuracy = std::max(result.best_valid_accuracy, valid_acc);
  }
  if (!result.epochs.empty()) {
    result.final_valid_accuracy = result.epochs.back().valid_accuracy;
  }
  return result;
}

}  // namespace agebo::nn
