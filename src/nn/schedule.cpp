#include "nn/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace agebo::nn {

GradualWarmup::GradualWarmup(double base_lr, double target_lr,
                             std::size_t warmup_epochs)
    : base_lr_(base_lr), target_lr_(target_lr), warmup_epochs_(warmup_epochs) {
  if (base_lr <= 0.0 || target_lr <= 0.0) {
    throw std::invalid_argument("GradualWarmup: non-positive lr");
  }
}

double GradualWarmup::lr_for_epoch(std::size_t epoch) const {
  if (warmup_epochs_ == 0 || epoch >= warmup_epochs_) return target_lr_;
  // Epoch 0 starts at base_lr; epoch warmup_epochs_ reaches target.
  const double frac =
      static_cast<double>(epoch) / static_cast<double>(warmup_epochs_);
  return base_lr_ + frac * (target_lr_ - base_lr_);
}

ReduceLROnPlateau::ReduceLROnPlateau(std::size_t patience, double factor,
                                     double min_delta, double min_lr)
    : patience_(patience), factor_(factor), min_delta_(min_delta), min_lr_(min_lr) {
  if (factor <= 0.0 || factor >= 1.0) {
    throw std::invalid_argument("ReduceLROnPlateau: factor must be in (0,1)");
  }
  if (patience == 0) throw std::invalid_argument("ReduceLROnPlateau: zero patience");
}

double ReduceLROnPlateau::update(double metric, double current_lr) {
  if (metric > best_ + min_delta_) {
    best_ = metric;
    epochs_since_best_ = 0;
    return current_lr;
  }
  ++epochs_since_best_;
  if (epochs_since_best_ >= patience_) {
    epochs_since_best_ = 0;
    ++reductions_;
    return std::max(current_lr * factor_, min_lr_);
  }
  return current_lr;
}

}  // namespace agebo::nn
