// Softmax cross-entropy loss and classification metrics.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace agebo::nn {

/// Row-wise softmax with max-subtraction for stability.
void softmax(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy of `logits` against integer labels, and the gradient
/// dL/dlogits (already divided by batch size). Returns the loss.
double softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                             Tensor& dlogits);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Argmax predictions per row.
std::vector<int> predict_classes(const Tensor& logits);

}  // namespace agebo::nn
