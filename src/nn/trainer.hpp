// Single-process minibatch trainer implementing the paper's recipe
// (Sec IV): Adam, 20 epochs, gradual warmup for the first 5 epochs, and a
// reduce-LR-on-plateau callback with patience 5 monitoring validation
// accuracy. The data-parallel variant lives in src/dp and reuses the same
// batching and schedule logic.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "nn/adam.hpp"
#include "nn/graph_net.hpp"
#include "nn/schedule.hpp"
#include "nn/tensor.hpp"

namespace agebo::nn {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 256;
  double lr = 0.01;
  /// Warmup ramps from `lr / warmup_div` to `lr`; warmup_div = 1 disables
  /// the ramp. The dp trainer sets warmup_div = n (ramp from lr1 to n*lr1).
  double warmup_div = 1.0;
  std::size_t warmup_epochs = 5;
  std::size_t plateau_patience = 5;
  double plateau_factor = 0.5;
  /// Decoupled weight decay (AdamW); 0 disables.
  double weight_decay = 0.0;
  /// Global gradient-norm clip; 0 disables.
  double grad_clip_norm = 0.0;
  std::uint64_t seed = 7;
};

struct EpochStats {
  double train_loss = 0.0;
  double valid_accuracy = 0.0;
  double learning_rate = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double best_valid_accuracy = 0.0;
  double final_valid_accuracy = 0.0;
};

/// Copy dataset rows [begin, end) into a Tensor + label vector.
void batch_from(const data::Dataset& ds, const std::vector<std::size_t>& order,
                std::size_t begin, std::size_t end, Tensor& x,
                std::vector<int>& y);

/// Accuracy of `net` over an entire dataset, evaluated in batches.
double evaluate_accuracy(GraphNet& net, const data::Dataset& ds,
                         std::size_t batch_size = 4096);

/// Train `net` and return per-epoch statistics.
TrainResult train(GraphNet& net, const data::Dataset& train_set,
                  const data::Dataset& valid_set, const TrainConfig& cfg);

}  // namespace agebo::nn
