// Fully connected layer with cached forward state for backprop. Also used
// (bias-less) as the linear projection on skip connections (Sec III-A).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace agebo::nn {

/// Mutable view over one parameter block and its gradient; the data-parallel
/// trainer allreduces over these without knowing the layer structure.
struct ParamRef {
  std::vector<float>* values;
  std::vector<float>* grads;
};

class DenseLayer {
 public:
  /// He-uniform initialization sized for `in` fan-in.
  DenseLayer(std::size_t in, std::size_t out, bool use_bias, Rng& rng);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }

  /// z = x W (+ b). Caches x for backward.
  void forward(const Tensor& x, Tensor& z);

  /// Given dL/dz, accumulate dL/dW and dL/db, and produce dL/dx.
  /// Must follow a forward() on the same batch.
  void backward(const Tensor& dz, Tensor& dx);

  void zero_grad();
  std::vector<ParamRef> params();
  std::size_t num_params() const;

  const Tensor& weights() const { return w_; }
  Tensor& weights() { return w_; }
  const std::vector<float>& bias() const { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  bool use_bias_;
  Tensor w_;                   // in x out
  std::vector<float> b_;       // out (empty when !use_bias_)
  Tensor gw_;                  // same shape as w_
  std::vector<float> gb_;
  Tensor cached_x_;            // input from the last forward
};

}  // namespace agebo::nn
