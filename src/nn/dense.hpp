// Fully connected layer with cached forward state for backprop. Also used
// (bias-less) as the linear projection on skip connections (Sec III-A).
//
// The forward/backward entry points come in fused flavors backed by the
// blocked GEMM epilogues in nn/kernels/: bias + activation ride on the
// forward GEMM, gradients accumulate directly into the parameter buffers,
// and the *_add variants sum into an existing output so skip-combination
// code never materializes per-edge temporaries.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/tensor.hpp"

namespace agebo::nn {

/// Mutable view over one parameter block and its gradient; the data-parallel
/// trainer allreduces over these without knowing the layer structure.
struct ParamRef {
  std::vector<float>* values;
  std::vector<float>* grads;
};

class DenseLayer {
 public:
  /// He-uniform initialization sized for `in` fan-in.
  DenseLayer(std::size_t in, std::size_t out, bool use_bias, Rng& rng);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }

  /// z = x W (+ b), bias fused into the GEMM epilogue. Caches x for
  /// backward.
  void forward(const Tensor& x, Tensor& z);

  /// Fused forward: z_pre = x W (+ b) and out = act(z_pre), one GEMM with
  /// both outputs written from the hot register tile. Caches x.
  void forward_act(const Tensor& x, Activation act, Tensor& z_pre,
                   Tensor& out);

  /// z += x W (no bias; accumulating GEMM). For skip projections summed
  /// into a combination buffer. Caches x.
  void forward_add(const Tensor& x, Tensor& z);

  /// Given dL/dz, accumulate dL/dW (directly into the gradient buffer, no
  /// staging tensor) and dL/db, and produce dL/dx.
  /// Must follow a forward on the same batch.
  void backward(const Tensor& dz, Tensor& dx);

  /// Same, but dx += dz W^T (accumulating GEMM) — for skip projections
  /// whose input gradient sums into a shared buffer.
  void backward_add(const Tensor& dz, Tensor& dx);

  void zero_grad();
  std::vector<ParamRef> params();
  std::size_t num_params() const;

  const Tensor& weights() const { return w_; }
  Tensor& weights() { return w_; }
  const std::vector<float>& bias() const { return b_; }

 private:
  void backward_impl(const Tensor& dz, Tensor& dx, bool accumulate_dx);

  std::size_t in_;
  std::size_t out_;
  bool use_bias_;
  Tensor w_;                   // in x out
  std::vector<float> b_;       // out (empty when !use_bias_)
  Tensor gw_;                  // same shape as w_
  std::vector<float> gb_;
  Tensor cached_x_;            // input from the last forward
};

}  // namespace agebo::nn
