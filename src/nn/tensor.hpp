// 2-D float tensor (row-major) with the handful of BLAS-like kernels the
// MLP training path needs. The matmul variants dispatch to the blocked
// SIMD kernels in nn/kernels/; the *_naive forms keep the original scalar
// triple loops as a differential-testing and benchmarking reference.
#pragma once

#include <cstddef>
#include <vector>

namespace agebo::nn {

struct Tensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> v;

  Tensor() = default;
  Tensor(std::size_t r, std::size_t c, float fill = 0.0f)
      : rows(r), cols(c), v(r * c, fill) {}

  float& at(std::size_t r, std::size_t c) { return v[r * cols + c]; }
  float at(std::size_t r, std::size_t c) const { return v[r * cols + c]; }
  float* row(std::size_t r) { return v.data() + r * cols; }
  const float* row(std::size_t r) const { return v.data() + r * cols; }
  std::size_t size() const { return v.size(); }
  bool same_shape(const Tensor& o) const {
    return rows == o.rows && cols == o.cols;
  }
};

/// Reshape `t` to r x c without touching its contents when the element
/// count already matches (the per-step fast path: no memset, no realloc).
/// Contents are unspecified after a genuine size change.
inline void ensure_shape(Tensor& t, std::size_t r, std::size_t c) {
  t.rows = r;
  t.cols = c;
  if (t.v.size() != r * c) t.v.resize(r * c);
}

/// out = a * b            (a: m x k, b: k x n)
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
/// out = a * b^T          (a: m x k, b: n x k)
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out);
/// out = a^T * b          (a: k x m, b: k x n)
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out);

/// Reference implementations (scalar i-k-j loops, with the zero-skip that
/// only pays off on sparse inputs). Semantically identical to the blocked
/// kernels; kept for differential tests and the perf-regression harness.
void matmul_naive(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_bt_naive(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_at_naive(const Tensor& a, const Tensor& b, Tensor& out);

/// Add row-vector bias (size = out.cols) to every row.
void add_bias(Tensor& out, const std::vector<float>& bias);

/// out += src (shapes must match).
void add_inplace(Tensor& out, const Tensor& src);

/// Column sums of `t` accumulated into `out` (out.size() == t.cols).
void col_sums(const Tensor& t, std::vector<float>& out);

}  // namespace agebo::nn
