#include "nn/tensor.hpp"

#include <stdexcept>

#include "nn/kernels/gemm.hpp"

namespace agebo::nn {

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols != b.rows) throw std::invalid_argument("matmul: inner dims");
  ensure_shape(out, a.rows, b.cols);
  kernels::gemm(a.rows, b.cols, a.cols, a.v.data(), a.cols, b.v.data(), b.cols,
                out.v.data(), out.cols);
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols != b.cols) throw std::invalid_argument("matmul_bt: inner dims");
  ensure_shape(out, a.rows, b.rows);
  kernels::gemm_bt(a.rows, b.rows, a.cols, a.v.data(), a.cols, b.v.data(),
                   b.cols, out.v.data(), out.cols);
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.rows != b.rows) throw std::invalid_argument("matmul_at: inner dims");
  ensure_shape(out, a.cols, b.cols);
  kernels::gemm_at(a.cols, b.cols, a.rows, a.v.data(), a.cols, b.v.data(),
                   b.cols, out.v.data(), out.cols);
}

void matmul_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols != b.rows) throw std::invalid_argument("matmul: inner dims");
  out.rows = a.rows;
  out.cols = b.cols;
  out.v.assign(out.rows * out.cols, 0.0f);
  // i-k-j loop order: unit-stride inner loop over both b and out rows.
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t k = 0; k < a.cols; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols; ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_bt_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols != b.cols) throw std::invalid_argument("matmul_bt: inner dims");
  out.rows = a.rows;
  out.cols = b.rows;
  out.v.assign(out.rows * out.cols, 0.0f);
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void matmul_at_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.rows != b.rows) throw std::invalid_argument("matmul_at: inner dims");
  out.rows = a.cols;
  out.cols = b.cols;
  out.v.assign(out.rows * out.cols, 0.0f);
  for (std::size_t k = 0; k < a.rows; ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols; ++j) orow[j] += aki * brow[j];
    }
  }
}

void add_bias(Tensor& out, const std::vector<float>& bias) {
  if (bias.size() != out.cols) throw std::invalid_argument("add_bias: size");
  for (std::size_t i = 0; i < out.rows; ++i) {
    float* row = out.row(i);
#pragma omp simd
    for (std::size_t j = 0; j < out.cols; ++j) row[j] += bias[j];
  }
}

void add_inplace(Tensor& out, const Tensor& src) {
  if (!out.same_shape(src)) throw std::invalid_argument("add_inplace: shape");
  float* o = out.v.data();
  const float* s = src.v.data();
#pragma omp simd
  for (std::size_t i = 0; i < out.v.size(); ++i) o[i] += s[i];
}

void col_sums(const Tensor& t, std::vector<float>& out) {
  if (out.size() != t.cols) throw std::invalid_argument("col_sums: size");
  float* o = out.data();
  for (std::size_t i = 0; i < t.rows; ++i) {
    const float* row = t.row(i);
#pragma omp simd
    for (std::size_t j = 0; j < t.cols; ++j) o[j] += row[j];
  }
}

}  // namespace agebo::nn
