#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/kernels/gemm.hpp"

namespace agebo::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, bool use_bias, Rng& rng)
    : in_(in), out_(out), use_bias_(use_bias), w_(in, out), gw_(in, out) {
  if (in == 0 || out == 0) throw std::invalid_argument("DenseLayer: zero dim");
  const float limit = std::sqrt(6.0f / static_cast<float>(in));
  for (auto& v : w_.v) v = static_cast<float>(rng.uniform(-limit, limit));
  if (use_bias_) {
    b_.assign(out, 0.0f);
    gb_.assign(out, 0.0f);
  }
}

void DenseLayer::forward(const Tensor& x, Tensor& z) {
  if (x.cols != in_) throw std::invalid_argument("DenseLayer::forward: dim");
  cached_x_ = x;  // capacity-reusing copy; no allocation in steady state
  ensure_shape(z, x.rows, out_);
  kernels::Epilogue ep;
  ep.bias = use_bias_ ? b_.data() : nullptr;
  kernels::gemm(x.rows, out_, in_, x.v.data(), in_, w_.v.data(), out_,
                z.v.data(), out_, /*accumulate=*/false,
                use_bias_ ? &ep : nullptr);
}

void DenseLayer::forward_act(const Tensor& x, Activation act, Tensor& z_pre,
                             Tensor& out) {
  if (x.cols != in_) throw std::invalid_argument("DenseLayer::forward_act: dim");
  cached_x_ = x;
  ensure_shape(z_pre, x.rows, out_);
  ensure_shape(out, x.rows, out_);
  kernels::Epilogue ep;
  ep.bias = use_bias_ ? b_.data() : nullptr;
  ep.act = act;
  ep.pre_act = z_pre.v.data();
  kernels::gemm(x.rows, out_, in_, x.v.data(), in_, w_.v.data(), out_,
                out.v.data(), out_, /*accumulate=*/false, &ep);
}

void DenseLayer::forward_add(const Tensor& x, Tensor& z) {
  if (x.cols != in_) throw std::invalid_argument("DenseLayer::forward_add: dim");
  if (z.rows != x.rows || z.cols != out_) {
    throw std::invalid_argument("DenseLayer::forward_add: output shape");
  }
  cached_x_ = x;
  kernels::gemm(x.rows, out_, in_, x.v.data(), in_, w_.v.data(), out_,
                z.v.data(), out_, /*accumulate=*/true);
}

void DenseLayer::backward_impl(const Tensor& dz, Tensor& dx,
                               bool accumulate_dx) {
  if (dz.cols != out_ || dz.rows != cached_x_.rows) {
    throw std::invalid_argument("DenseLayer::backward: shape");
  }
  // dW += x^T dz (accumulated straight into gw_); db += colsum(dz);
  // dx (+)= dz W^T.
  kernels::gemm_at(in_, out_, dz.rows, cached_x_.v.data(), in_, dz.v.data(),
                   out_, gw_.v.data(), out_, /*accumulate=*/true);
  if (use_bias_) col_sums(dz, gb_);
  if (!accumulate_dx) ensure_shape(dx, dz.rows, in_);
  kernels::gemm_bt(dz.rows, in_, out_, dz.v.data(), out_, w_.v.data(), out_,
                   dx.v.data(), in_, accumulate_dx);
}

void DenseLayer::backward(const Tensor& dz, Tensor& dx) {
  backward_impl(dz, dx, /*accumulate_dx=*/false);
}

void DenseLayer::backward_add(const Tensor& dz, Tensor& dx) {
  if (dx.rows != dz.rows || dx.cols != in_) {
    throw std::invalid_argument("DenseLayer::backward_add: output shape");
  }
  backward_impl(dz, dx, /*accumulate_dx=*/true);
}

void DenseLayer::zero_grad() {
  gw_.v.assign(gw_.v.size(), 0.0f);
  gb_.assign(gb_.size(), 0.0f);
}

std::vector<ParamRef> DenseLayer::params() {
  std::vector<ParamRef> out;
  out.push_back({&w_.v, &gw_.v});
  if (use_bias_) out.push_back({&b_, &gb_});
  return out;
}

std::size_t DenseLayer::num_params() const {
  return w_.v.size() + b_.size();
}

}  // namespace agebo::nn
