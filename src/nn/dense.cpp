#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace agebo::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, bool use_bias, Rng& rng)
    : in_(in), out_(out), use_bias_(use_bias), w_(in, out), gw_(in, out) {
  if (in == 0 || out == 0) throw std::invalid_argument("DenseLayer: zero dim");
  const float limit = std::sqrt(6.0f / static_cast<float>(in));
  for (auto& v : w_.v) v = static_cast<float>(rng.uniform(-limit, limit));
  if (use_bias_) {
    b_.assign(out, 0.0f);
    gb_.assign(out, 0.0f);
  }
}

void DenseLayer::forward(const Tensor& x, Tensor& z) {
  if (x.cols != in_) throw std::invalid_argument("DenseLayer::forward: dim");
  cached_x_ = x;
  matmul(x, w_, z);
  if (use_bias_) add_bias(z, b_);
}

void DenseLayer::backward(const Tensor& dz, Tensor& dx) {
  if (dz.cols != out_ || dz.rows != cached_x_.rows) {
    throw std::invalid_argument("DenseLayer::backward: shape");
  }
  // dW += x^T dz ; db += colsum(dz); dx = dz W^T.
  Tensor gw_batch;
  matmul_at(cached_x_, dz, gw_batch);
  add_inplace(gw_, gw_batch);
  if (use_bias_) col_sums(dz, gb_);
  matmul_bt(dz, w_, dx);
}

void DenseLayer::zero_grad() {
  gw_.v.assign(gw_.v.size(), 0.0f);
  gb_.assign(gb_.size(), 0.0f);
}

std::vector<ParamRef> DenseLayer::params() {
  std::vector<ParamRef> out;
  out.push_back({&w_.v, &gw_.v});
  if (use_bias_) out.push_back({&b_, &gb_});
  return out;
}

std::size_t DenseLayer::num_params() const {
  return w_.v.size() + b_.size();
}

}  // namespace agebo::nn
