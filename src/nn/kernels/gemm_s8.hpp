// Int8 inference GEMM: u8 activations x s8 weights accumulating into s32,
// with a fused quantize-on-pack front end and a fused dequantize + bias +
// activation epilogue (DESIGN.md §13).
//
// The serving fast path. Weights are quantized offline (symmetric,
// per-output-column, nn/quant.hpp); activations are quantized on the fly
// while the A panel is packed, so the fp32 interchange buffers the engine
// already owns feed the int8 kernel directly — no separate quantized
// activation tensor exists. The epilogue converts the s32 accumulator back
// to fp32 while the C tile is hot, so downstream ops (combine, softmax,
// the next layer's packing) see ordinary float rows.
//
// Quantization contract (why results are exact and ISA-independent):
//   - activations: affine u8 restricted to [0, 127] (7 bits + zero point),
//   - weights: symmetric s8 in [-127, 127].
// With 7-bit unsigned activations, |a0*w0 + a1*w1| <= 2 * 127 * 127 =
// 32258 < 32767, so the AVX2 `maddubs` pairwise step cannot saturate its
// s16 intermediates and computes the same exact integers as AVX-512 VNNI
// `vpdpbusd` (which accumulates into s32 without saturating) and as the
// scalar tier. Integer accumulation is order-independent, and the
// epilogue's float math is elementwise in a fixed order, so every
// dispatched ISA produces bit-identical fp32 outputs — the differential
// tests assert naive == SIMD per tier, bitwise.
//
// Blocking mirrors the fp32 path (gemm.hpp): NC column panels, KC-deep K
// blocks with B packed to NR strips (K grouped in 4s for the dot-product
// instructions), MC row blocks with A packed to MR strips, scratch from
// the same bump-arena Workspace. A naive triple-loop reference with the
// identical quantize/dequantize math is kept for differential tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/activation.hpp"

namespace agebo::nn::kernels {

/// Fused dequantize + bias + activation tail, applied to the s32
/// accumulator as it leaves the register tile. For output column j:
///   real = float(acc[j] - comp[j]) * dq_scale[j] (+ bias[j]); C = act(real)
/// where comp[j] = a_zp * sum_k wq[k][j] removes the activation zero-point
/// contribution and dq_scale[j] = a_scale * w_scale[j] undoes both scales.
struct QuantEpilogue {
  /// Per-column dequantization scale (length n). Required.
  const float* dq_scale = nullptr;
  /// Per-column zero-point compensation a_zp * colsum(wq) (length n). Required.
  const std::int32_t* comp = nullptr;
  /// Row-broadcast fp32 bias of length n; nullptr = none.
  const float* bias = nullptr;
  /// Activation applied after dequant + bias; kIdentity = none.
  Activation act = Activation::kIdentity;
  /// When true, C += act(dequant(...)) instead of overwriting — lets a
  /// skip projection accumulate into the combine sum without a staging
  /// buffer, like the fp32 kernel's accumulate mode.
  bool accumulate = false;
};

/// Quantize one fp32 activation to the 7-bit affine grid. `inv_scale` is
/// 1 / act_scale, precomputed so every caller (packing, naive reference,
/// calibration previews) performs the identical float op sequence.
inline std::uint8_t quantize_act(float v, float inv_scale, std::int32_t zp) {
  long q = std::lrintf(v * inv_scale) + zp;
  if (q < 0) q = 0;
  if (q > 127) q = 127;
  return static_cast<std::uint8_t>(q);
}

/// Weights packed ahead of time into the microkernel strip layout, so a
/// frozen model's (constant) B panels are packed exactly once instead of
/// on every GEMM call — the dominant per-call overhead at serving shapes.
/// The layout is tier-specific (strip width = the active kernel's NR), so
/// the container records the width it was packed for; gemm_u8s8 uses the
/// prepack only when it matches the tier it dispatches to and silently
/// falls back to pack-on-the-fly otherwise (e.g. under a set_int8_isa
/// test override). Treat the fields as opaque.
struct PackedWeightsS8 {
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t nr = 0;  // strip width the panels were packed for
  std::vector<std::int8_t> data;
  bool empty() const { return data.empty(); }
};

/// Pack wq (k x n row-major, ld ldb) for the currently dispatched tier.
PackedWeightsS8 pack_weights_s8(const std::int8_t* wq, std::size_t ldb,
                                std::size_t k, std::size_t n);

/// C = dequant(Aq Wq). a: m x k fp32 rows (ld lda), quantized on the fly
/// with (a_inv_scale, a_zp); wq: k x n row-major s8 (ld ldb); c: m x n fp32
/// (ld ldc). C must not alias A. Blocked + SIMD (runtime dispatch across
/// AVX-512 VNNI / AVX2 / scalar); bit-identical to gemm_u8s8_naive.
/// `packed`, when non-null and built for the dispatched tier, supplies the
/// pre-packed B panels (it must describe the same wq).
void gemm_u8s8(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, float a_inv_scale, std::int32_t a_zp,
               const std::int8_t* wq, std::size_t ldb, float* c,
               std::size_t ldc, const QuantEpilogue& ep,
               const PackedWeightsS8* packed = nullptr);

/// Scalar triple-loop reference with the identical quantize / accumulate /
/// dequantize math. Kept for differential tests and the perf harness.
void gemm_u8s8_naive(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, float a_inv_scale,
                     std::int32_t a_zp, const std::int8_t* wq, std::size_t ldb,
                     float* c, std::size_t ldc, const QuantEpilogue& ep);

/// Int8 microkernel tiers, widest first. kAuto resolves to the widest tier
/// the CPU supports.
enum class Int8Isa { kAuto, kVnni, kAvx2, kScalar };

/// Force a specific tier for differential testing; requests the hardware
/// cannot honor fall back to the widest supported tier at or below the
/// request. kAuto restores runtime selection. Not thread-safe — test-only.
void set_int8_isa(Int8Isa isa);

/// The tier gemm_u8s8 will actually run (after fallback).
Int8Isa active_int8_isa();

/// Human-readable name of a tier ("vnni", "avx2", "scalar", "auto").
const char* to_string(Int8Isa isa);

}  // namespace agebo::nn::kernels
