#include "nn/kernels/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace agebo::nn::kernels {

namespace {

constexpr std::size_t kMaxPoolThreads = 16;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, kMaxPoolThreads);
}

std::atomic<std::size_t> g_default_max{0};  // 0 = auto
thread_local std::size_t t_local_limit = 0;  // 0 = inherit default

// Lazily-built persistent pool. Collectives are serialized by dispatch_mu_:
// if two trainer threads issue big GEMMs at once, the second waits for the
// first collective instead of doubling the live thread count.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool(hardware_threads() - 1);
    return pool;
  }

  void run(std::size_t nchunks, std::size_t nthreads,
           const std::function<void(std::size_t)>& fn) {
    std::lock_guard<std::mutex> dispatch(dispatch_mu_);
    const std::size_t helpers =
        std::min(nthreads - 1, std::min(workers_.size(), nchunks - 1));
    if (helpers == 0) {
      for (std::size_t c = 0; c < nchunks; ++c) fn(c);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      nchunks_ = nchunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      tickets_ = helpers;  // how many workers may join this collective
      active_ = helpers;   // how many joins must complete before we return
      ++generation_;
    }
    cv_start_.notify_all();

    // Caller participates: chunks are claimed atomically, so the split
    // adapts to whoever is free (chunk content stays schedule-independent).
    work();

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
  }

 private:
  explicit Pool(std::size_t nworkers) {
    workers_.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void work() {
    while (true) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks_) break;
      (*job_)(c);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      bool participate = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        if (tickets_ > 0) {
          --tickets_;
          participate = true;
        }
      }
      // Undrafted workers (budget < pool size) go back to sleep; the
      // caller only waits on the `active_` joins it handed out.
      if (!participate) continue;
      work();
      bool last;
      {
        std::lock_guard<std::mutex> lock(mu_);
        last = (--active_ == 0);
      }
      if (last) cv_done_.notify_one();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex dispatch_mu_;  // serializes whole collectives across callers

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t nchunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t tickets_ = 0;
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

void set_max_threads(std::size_t n) {
  g_default_max.store(n, std::memory_order_relaxed);
}

std::size_t max_threads() {
  std::size_t n = t_local_limit;
  if (n == 0) n = g_default_max.load(std::memory_order_relaxed);
  if (n == 0) n = hardware_threads();
  return std::max<std::size_t>(1, std::min(n, kMaxPoolThreads));
}

ScopedThreadLimit::ScopedThreadLimit(std::size_t n) : prev_(t_local_limit) {
  t_local_limit = n;
}

ScopedThreadLimit::~ScopedThreadLimit() { t_local_limit = prev_; }

void parallel_for(std::size_t nchunks,
                  const std::function<void(std::size_t)>& fn) {
  if (nchunks == 0) return;
  const std::size_t nthreads = std::min(max_threads(), nchunks);
  if (nchunks == 1 || nthreads <= 1) {
    for (std::size_t c = 0; c < nchunks; ++c) fn(c);
    return;
  }
  Pool::instance().run(nchunks, nthreads, fn);
}

}  // namespace agebo::nn::kernels
