// Cache-blocked, register-blocked, compiler-vectorized GEMM kernels for
// the dense-NN training path, with fused epilogues.
//
// All three layouts the MLP needs share one packed microkernel:
//   gemm     C = A  B      (A: m x k,  B: k x n)   forward
//   gemm_bt  C = A  B^T    (A: m x k,  B: n x k)   dx = dz W^T
//   gemm_at  C = A^T B     (A: k x m,  B: k x n)   dW = x^T dz
// The transpose is absorbed by the packing routine, so the hot inner loop
// is identical (and identically vectorized) for every variant.
//
// Blocking follows the classic GotoBLAS/BLIS scheme: NC-wide column
// panels, KC-deep K blocks (B panel packed to L1-friendly NR strips),
// MC-tall row blocks (A packed to MR strips), and an MR x NR register
// tile accumulated across the whole K block without touching C. K is
// summed in ascending order exactly like the naive kernels, so results
// match the reference to rounding.
//
// Epilogues fuse the work Dense layers used to do in separate passes:
// bias broadcast, activation, and a second "pre-activation" output for
// backprop — applied while the C tile is still hot.
//
// Threading: row blocks are distributed over kernels::parallel_for with
// disjoint output ranges (bit-deterministic for any thread count); tiny
// problems stay serial. Scratch comes from the thread-local Workspace, so
// steady-state steps allocate nothing.
#pragma once

#include <cstddef>

#include "nn/activation.hpp"

namespace agebo::nn::kernels {

/// Optional fused tail applied to C after the full K accumulation.
struct Epilogue {
  /// Row-broadcast bias of length n; nullptr = none.
  const float* bias = nullptr;
  /// Activation applied to (acc + bias); kIdentity = none.
  Activation act = Activation::kIdentity;
  /// When non-null, the pre-activation value (acc + bias) is also stored
  /// here (same m x n shape and leading dimension as C). Backprop needs it.
  float* pre_act = nullptr;
};

/// C = A B (+C when accumulate). a: m x k (ld lda), b: k x n (ld ldb),
/// c: m x n (ld ldc). C must not alias A or B.
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, const float* b, std::size_t ldb, float* c,
          std::size_t ldc, bool accumulate = false,
          const Epilogue* ep = nullptr);

/// C = A B^T (+C when accumulate). a: m x k, b: n x k.
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate = false,
             const Epilogue* ep = nullptr);

/// C = A^T B (+C when accumulate). a: k x m, b: k x n.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate = false,
             const Epilogue* ep = nullptr);

/// dz = g * f'(z), elementwise, out-of-place (dz may alias g). The fused
/// form of "copy grad, then apply_activation_grad in place" — one pass,
/// no temporary. All pointers cover m x n contiguous row-major data.
void act_grad_mul(Activation act, const float* z, const float* g, float* dz,
                  std::size_t count);

}  // namespace agebo::nn::kernels
