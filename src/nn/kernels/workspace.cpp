#include "nn/kernels/workspace.hpp"

#include <algorithm>
#include <cstdint>

namespace agebo::nn::kernels {

namespace {
constexpr std::size_t kAlignFloats = 16;  // 64 bytes
constexpr std::size_t kMinBlockFloats = 1 << 16;  // 256 KiB
}  // namespace

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

float* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;
  // Round the request so the next bump stays aligned.
  n = (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;

  // Advance to (or create) a block with room.
  while (true) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      if (b.size - cur_off_ >= n) {
        float* p = b.base + cur_off_;
        cur_off_ += n;
        return p;
      }
      // Skip the rest of this block; callers hold pointers into it, so it
      // must stay alive, but the bump pointer moves on.
      ++cur_block_;
      cur_off_ = 0;
      continue;
    }
    // Grow: at least double the last block so the block count stays O(log).
    std::size_t want = std::max(n, kMinBlockFloats);
    if (!blocks_.empty()) want = std::max(want, blocks_.back().size * 2);
    Block b;
    b.raw = std::make_unique<float[]>(want + kAlignFloats);
    auto addr = reinterpret_cast<std::uintptr_t>(b.raw.get());
    const std::size_t mis =
        (64 - addr % 64) % 64 / sizeof(float);  // floats to 64B boundary
    b.base = b.raw.get() + mis;
    b.size = want;
    blocks_.push_back(std::move(b));
  }
}

std::size_t Workspace::capacity() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

}  // namespace agebo::nn::kernels
