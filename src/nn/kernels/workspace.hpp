// Bump-pointer arena for kernel scratch memory (GEMM packing panels,
// fused-op staging buffers). Repeated training steps request the same
// sizes over and over; the arena services them from a handful of
// persistent blocks instead of hitting the allocator every call.
//
// Usage pattern:
//   auto& ws = Workspace::tls();
//   Workspace::Scope scope(ws);          // restores the arena on exit
//   float* apack = scope.alloc(mc * kc); // 64-byte aligned, uninitialized
//
// Scopes nest (a kernel can call another kernel); each Scope releases
// exactly what was allocated after it was opened. Blocks are never freed
// until the owning thread exits, so steady-state training does zero
// allocations in the hot loop.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace agebo::nn::kernels {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Thread-local instance: safe to use from pool workers without locking.
  static Workspace& tls();

  /// RAII frame: every alloc() through the scope is released when the
  /// scope dies, without freeing the underlying blocks.
  class Scope {
   public:
    explicit Scope(Workspace& ws)
        : ws_(ws), saved_block_(ws.cur_block_), saved_off_(ws.cur_off_) {}
    ~Scope() {
      ws_.cur_block_ = saved_block_;
      ws_.cur_off_ = saved_off_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    float* alloc(std::size_t n) { return ws_.alloc(n); }

   private:
    Workspace& ws_;
    std::size_t saved_block_;
    std::size_t saved_off_;
  };

  /// 64-byte-aligned uninitialized scratch, valid until the enclosing
  /// Scope (or clear()) releases it.
  float* alloc(std::size_t n);

  /// Release all frames (blocks are kept for reuse).
  void clear() {
    cur_block_ = 0;
    cur_off_ = 0;
  }

  /// Total floats of backing capacity currently held (for tests/stats).
  std::size_t capacity() const;

 private:
  struct Block {
    std::unique_ptr<float[]> raw;
    float* base = nullptr;  // 64B-aligned into raw
    std::size_t size = 0;   // usable floats at base
  };

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;  // block the bump pointer lives in
  std::size_t cur_off_ = 0;    // floats used within cur_block_

  friend class Scope;
};

}  // namespace agebo::nn::kernels
