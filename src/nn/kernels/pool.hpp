// Shared worker pool for intra-op kernel parallelism (the M-loop of the
// blocked GEMMs). One process-wide pool is created lazily on first use and
// reused by every kernel call, so thread creation never sits on a training
// step.
//
// Cooperation with dp::ThreadTeam: the effective thread count is read from
// a *thread-local* limit, so DataParallelTrainer can pin its replica
// workers to 1 kernel thread each (no oversubscription when n_procs > 1)
// while single-replica training on the main thread still fans out.
// Concurrent parallel_for() calls from different threads serialize on the
// pool, which keeps the machine work-conserving rather than oversubscribed.
//
// Determinism: callers partition output rows into disjoint chunks; a
// chunk's result does not depend on which worker runs it, so results are
// bit-identical for any thread count or schedule.
#pragma once

#include <cstddef>
#include <functional>

namespace agebo::nn::kernels {

/// Process-wide default for the kernel thread budget. 0 = auto
/// (hardware_concurrency, capped). Applies to threads with no local limit.
void set_max_threads(std::size_t n);

/// Effective kernel thread budget for the calling thread (>= 1): the
/// thread-local limit if set, else the process-wide default.
std::size_t max_threads();

/// RAII thread-local override of the kernel thread budget; 0 restores
/// "inherit the process-wide default". Used by dp::DataParallelTrainer to
/// run kernels serially inside each replica worker.
class ScopedThreadLimit {
 public:
  explicit ScopedThreadLimit(std::size_t n);
  ~ScopedThreadLimit();
  ScopedThreadLimit(const ScopedThreadLimit&) = delete;
  ScopedThreadLimit& operator=(const ScopedThreadLimit&) = delete;

 private:
  std::size_t prev_;
};

/// Run fn(chunk) for chunk in [0, nchunks) across the pool; the calling
/// thread participates. Returns after every chunk finished. Runs inline
/// when nchunks <= 1 or the budget is 1. fn must not throw and must not
/// call parallel_for itself.
void parallel_for(std::size_t nchunks, const std::function<void(std::size_t)>& fn);

}  // namespace agebo::nn::kernels
