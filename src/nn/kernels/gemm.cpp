#include "nn/kernels/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "nn/kernels/pool.hpp"
#include "nn/kernels/workspace.hpp"
#include "obs/registry.hpp"

namespace agebo::nn::kernels {

namespace {

// Register tile. The baseline NR tracks the widest vector the *build*
// targets (see the AGEBO_NATIVE CMake knob); at runtime the dispatcher
// below may select a wider-NR microkernel compiled for AVX2/AVX-512 via
// GCC target attributes, so a portable baseline binary still runs FMA
// kernels on hardware that has them.
constexpr std::size_t MR = 6;
#if defined(__AVX512F__)
constexpr std::size_t NR_BASE = 32;
#elif defined(__AVX__)
constexpr std::size_t NR_BASE = 16;
#else
constexpr std::size_t NR_BASE = 8;
#endif
constexpr std::size_t NR_MAX = 32;

// Cache blocking: B panel (KC x NR strips) sized for L1/L2 residency, A
// block (MC x KC) for L2. The search-space layers (batch <= 1024, widths
// <= a few hundred) usually fit a single K block, so epilogues fuse
// directly into the tile writeback.
constexpr std::size_t MC = 120;  // multiple of MR
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 512;  // multiple of every NR the dispatcher picks

// Parallelize only when there is enough arithmetic to amortize a pool
// dispatch (~ a few microseconds).
constexpr std::size_t kParallelFlopThreshold = 1u << 21;  // ~2 MFLOP

inline std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

// ---- packing ---------------------------------------------------------
// Both packers emit the same layout the microkernel consumes: column
// strips of NR (B) / row strips of MR (A), K-major within a strip, edge
// strips zero-padded so the microkernel never branches on bounds.

// B block (kc x nc) starting at row p0 / col j0 of the logical K x N
// operand. trans=false: b is k x n row-major. trans=true: b is n x k
// (gemm_bt), so logical B(p, j) = b[j, p].
void pack_b(bool trans, const float* b, std::size_t ldb, std::size_t p0,
            std::size_t j0, std::size_t kc, std::size_t nc, std::size_t nr,
            float* bp) {
  for (std::size_t j = 0; j < nc; j += nr) {
    const std::size_t jb = std::min(nr, nc - j);
    float* dst = bp + j * kc;
    if (!trans) {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const float* src = b + (p0 + kk) * ldb + j0 + j;
        float* d = dst + kk * nr;
        for (std::size_t jr = 0; jr < jb; ++jr) d[jr] = src[jr];
        for (std::size_t jr = jb; jr < nr; ++jr) d[jr] = 0.0f;
      }
    } else {
      for (std::size_t jr = 0; jr < jb; ++jr) {
        const float* src = b + (j0 + j + jr) * ldb + p0;
        for (std::size_t kk = 0; kk < kc; ++kk) dst[kk * nr + jr] = src[kk];
      }
      for (std::size_t jr = jb; jr < nr; ++jr) {
        for (std::size_t kk = 0; kk < kc; ++kk) dst[kk * nr + jr] = 0.0f;
      }
    }
  }
}

// A block (mc x kc) starting at row i0 / col p0 of the logical M x K
// operand. trans=false: a is m x k row-major. trans=true: a is k x m
// (gemm_at), so logical A(i, p) = a[p, i].
void pack_a(bool trans, const float* a, std::size_t lda, std::size_t i0,
            std::size_t p0, std::size_t mc, std::size_t kc, float* ap) {
  for (std::size_t i = 0; i < mc; i += MR) {
    const std::size_t ib = std::min(MR, mc - i);
    float* dst = ap + i * kc;
    if (!trans) {
      for (std::size_t ir = 0; ir < ib; ++ir) {
        const float* src = a + (i0 + i + ir) * lda + p0;
        for (std::size_t kk = 0; kk < kc; ++kk) dst[kk * MR + ir] = src[kk];
      }
      for (std::size_t ir = ib; ir < MR; ++ir) {
        for (std::size_t kk = 0; kk < kc; ++kk) dst[kk * MR + ir] = 0.0f;
      }
    } else {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (p0 + kk) * lda + i0 + i;
        float* d = dst + kk * MR;
        for (std::size_t ir = 0; ir < ib; ++ir) d[ir] = src[ir];
        for (std::size_t ir = ib; ir < MR; ++ir) d[ir] = 0.0f;
      }
    }
  }
}

// ---- microkernel -----------------------------------------------------

// MR x NR tile accumulated over one K block. K ascends exactly like the
// naive reference, so blocked results agree with it to rounding (FMA
// variants contract the multiply-add, which only tightens the rounding).
// The body is instantiated once per ISA tier; always_inline pulls it into
// the target-attributed wrappers so each copy vectorizes at that tier's
// register width.
template <std::size_t NR_T>
[[gnu::always_inline]] inline void micro_body(std::size_t kc,
                                              const float* __restrict ap,
                                              const float* __restrict bp,
                                              float* __restrict acc) {
  for (std::size_t x = 0; x < MR * NR_T; ++x) acc[x] = 0.0f;
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* __restrict brow = bp + kk * NR_T;
    const float* __restrict arow = ap + kk * MR;
    for (std::size_t ir = 0; ir < MR; ++ir) {
      const float av = arow[ir];
      float* __restrict crow = acc + ir * NR_T;
#pragma omp simd
      for (std::size_t jr = 0; jr < NR_T; ++jr) crow[jr] += av * brow[jr];
    }
  }
}

void micro_base(std::size_t kc, const float* ap, const float* bp, float* acc) {
  micro_body<NR_BASE>(kc, ap, bp, acc);
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__AVX512F__)
#if !defined(__AVX2__) || !defined(__FMA__)
[[gnu::target("avx2,fma")]] void micro_avx2(std::size_t kc, const float* ap,
                                            const float* bp, float* acc) {
  micro_body<16>(kc, ap, bp, acc);
}
#endif
[[gnu::target("avx512f,fma")]] void micro_avx512(std::size_t kc,
                                                 const float* ap,
                                                 const float* bp, float* acc) {
  micro_body<32>(kc, ap, bp, acc);
}
#endif

using MicroFn = void (*)(std::size_t, const float*, const float*, float*);

struct KernelConfig {
  MicroFn micro;
  std::size_t nr;
};

// Pick the widest microkernel the CPU can run. Checked once; the baseline
// build (no AGEBO_NATIVE) still reaches AVX2/AVX-512 FMA through this.
KernelConfig select_kernel() {
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma")) {
    return {micro_avx512, 32};
  }
#if !defined(__AVX2__) || !defined(__FMA__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {micro_avx2, 16};
  }
#endif
#endif
  return {micro_base, NR_BASE};
}

const KernelConfig& kernel_config() {
  static const KernelConfig cfg = select_kernel();
  return cfg;
}

// Tile writeback with the optional fused epilogue. `load_c` is true when
// C already holds a partial sum (earlier K block) or the caller asked to
// accumulate. The epilogue only ever runs on the final K block.
void write_tile(float* c, std::size_t ldc, std::size_t mr, std::size_t nr,
                std::size_t acc_stride, const float* acc, bool load_c,
                const Epilogue* ep, const float* bias, float* pre,
                std::size_t ldpre) {
  for (std::size_t ir = 0; ir < mr; ++ir) {
    float* crow = c + ir * ldc;
    const float* arow = acc + ir * acc_stride;
    if (ep == nullptr) {
      if (load_c) {
#pragma omp simd
        for (std::size_t jr = 0; jr < nr; ++jr) crow[jr] += arow[jr];
      } else {
#pragma omp simd
        for (std::size_t jr = 0; jr < nr; ++jr) crow[jr] = arow[jr];
      }
      continue;
    }
    float* prow = pre ? pre + ir * ldpre : nullptr;
    switch (ep->act) {
      case Activation::kIdentity:
        for (std::size_t jr = 0; jr < nr; ++jr) {
          float v = arow[jr] + (load_c ? crow[jr] : 0.0f);
          if (bias) v += bias[jr];
          if (prow) prow[jr] = v;
          crow[jr] = v;
        }
        break;
      case Activation::kRelu:
        for (std::size_t jr = 0; jr < nr; ++jr) {
          float v = arow[jr] + (load_c ? crow[jr] : 0.0f);
          if (bias) v += bias[jr];
          if (prow) prow[jr] = v;
          crow[jr] = v > 0.0f ? v : 0.0f;
        }
        break;
      default:  // swish / tanh / sigmoid: expf dominates anyway
        for (std::size_t jr = 0; jr < nr; ++jr) {
          float v = arow[jr] + (load_c ? crow[jr] : 0.0f);
          if (bias) v += bias[jr];
          if (prow) prow[jr] = v;
          crow[jr] = activate_scalar(ep->act, v);
        }
        break;
    }
  }
}

// k == 0 degenerates to "epilogue of an all-zero product".
void epilogue_only(std::size_t m, std::size_t n, float* c, std::size_t ldc,
                   bool accumulate, const Epilogue* ep) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    float* prow = ep && ep->pre_act ? ep->pre_act + i * ldc : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      float v = accumulate ? crow[j] : 0.0f;
      if (ep && ep->bias) v += ep->bias[j];
      if (prow) prow[j] = v;
      crow[j] = ep ? activate_scalar(ep->act, v) : v;
    }
  }
}

// Serial blocked GEMM over the full [0, m) row range it is given.
void gemm_serial(bool a_trans, bool b_trans, std::size_t m, std::size_t n,
                 std::size_t k, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float* c, std::size_t ldc,
                 bool accumulate, const Epilogue* ep) {
  const KernelConfig& cfg = kernel_config();
  const std::size_t nr = cfg.nr;
  Workspace::Scope scope(Workspace::tls());
  const std::size_t kc_max = std::min(k, KC);
  float* bpack = scope.alloc(kc_max * round_up(std::min(n, NC), nr));
  float* apack = scope.alloc(round_up(std::min(m, MC), MR) * kc_max);
  alignas(64) float acc[MR * NR_MAX];

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      pack_b(b_trans, b, ldb, pc, jc, kc, nc, nr, bpack);
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        pack_a(a_trans, a, lda, ic, pc, mc, kc, apack);
        for (std::size_t jr = 0; jr < nc; jr += nr) {
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            cfg.micro(kc, apack + ir * kc, bpack + jr * kc, acc);
            const Epilogue* tile_ep = last ? ep : nullptr;
            write_tile(c + (ic + ir) * ldc + jc + jr, ldc,
                       std::min(MR, mc - ir), std::min(nr, nc - jr), nr, acc,
                       accumulate || !first, tile_ep,
                       tile_ep && tile_ep->bias ? tile_ep->bias + jc + jr
                                                : nullptr,
                       tile_ep && tile_ep->pre_act
                           ? tile_ep->pre_act + (ic + ir) * ldc + jc + jr
                           : nullptr,
                       ldc);
          }
        }
      }
    }
  }
}

void gemm_driver(bool a_trans, bool b_trans, std::size_t m, std::size_t n,
                 std::size_t k, const float* a, std::size_t lda,
                 const float* b, std::size_t ldb, float* c, std::size_t ldc,
                 bool accumulate, const Epilogue* ep) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    epilogue_only(m, n, c, ldc, accumulate, ep);
    return;
  }

  const std::size_t nthreads = max_threads();
  const bool small = m * n < kParallelFlopThreshold / (2 * k) || m < 2 * MR;
  if (nthreads <= 1 || small) {
    gemm_serial(a_trans, b_trans, m, n, k, a, lda, b, ldb, c, ldc, accumulate,
                ep);
    return;
  }

  // Split the M dimension into disjoint row ranges (multiples of MR so
  // every chunk sees tidy tiles). Each chunk's rows are computed by
  // exactly one worker with the fixed ascending-K order, so the result is
  // bit-identical for any thread count or schedule.
  const std::size_t nchunks = std::min(nthreads, (m + MR - 1) / MR);
  const std::size_t rows_per_chunk = round_up((m + nchunks - 1) / nchunks, MR);
  parallel_for(nchunks, [&](std::size_t chunk) {
    const std::size_t i0 = chunk * rows_per_chunk;
    if (i0 >= m) return;
    const std::size_t mc = std::min(rows_per_chunk, m - i0);
    const float* a_sub = a_trans ? a + i0 : a + i0 * lda;
    Epilogue sub_ep;
    const Epilogue* ep_sub = nullptr;
    if (ep) {
      sub_ep = *ep;
      if (sub_ep.pre_act) sub_ep.pre_act += i0 * ldc;
      ep_sub = &sub_ep;
    }
    gemm_serial(a_trans, b_trans, mc, n, k, a_sub, lda, b, ldb, c + i0 * ldc,
                ldc, accumulate, ep_sub);
  });
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, const float* b, std::size_t ldb, float* c,
          std::size_t ldc, bool accumulate, const Epilogue* ep) {
  obs::add_flops(2ull * m * n * k);
  gemm_driver(false, false, m, n, k, a, lda, b, ldb, c, ldc, accumulate, ep);
}

void gemm_bt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate, const Epilogue* ep) {
  obs::add_flops(2ull * m * n * k);
  gemm_driver(false, true, m, n, k, a, lda, b, ldb, c, ldc, accumulate, ep);
}

void gemm_at(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate, const Epilogue* ep) {
  obs::add_flops(2ull * m * n * k);
  gemm_driver(true, false, m, n, k, a, lda, b, ldb, c, ldc, accumulate, ep);
}

void act_grad_mul(Activation act, const float* z, const float* g, float* dz,
                  std::size_t count) {
  switch (act) {
    case Activation::kIdentity:
      if (dz != g) std::memcpy(dz, g, count * sizeof(float));
      return;
    case Activation::kRelu:
#pragma omp simd
      for (std::size_t i = 0; i < count; ++i) {
        dz[i] = z[i] > 0.0f ? g[i] : 0.0f;
      }
      return;
    default:
      for (std::size_t i = 0; i < count; ++i) {
        dz[i] = g[i] * activate_grad_scalar(act, z[i]);
      }
      return;
  }
}

}  // namespace agebo::nn::kernels
