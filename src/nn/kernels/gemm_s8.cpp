#include "nn/kernels/gemm_s8.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "nn/kernels/pool.hpp"
#include "nn/kernels/workspace.hpp"
#include "obs/registry.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define AGEBO_S8_X86 1
#endif

namespace agebo::nn::kernels {

namespace {

// Register tile. MR matches the fp32 path; NR counts *columns* (each
// column is one s32 accumulator lane holding a 4-deep K dot product).
constexpr std::size_t MR = 6;
constexpr std::size_t NR_MAX = 32;  // VNNI tier: two zmm accumulator columns

// Cache blocking. Int8 elements are 4x denser than fp32, so KC is 4x the
// fp32 path's 256 for the same L1 byte footprint of a B strip
// (KC x NR = 16 KiB at the VNNI width); a single K block then covers
// every layer width the search space can emit, keeping the staging-free
// tile writeback on the hot path. MC is a multiple of MR.
constexpr std::size_t MC = 96;
constexpr std::size_t KC = 1024;
constexpr std::size_t NC = 512;  // multiple of every NR the dispatcher picks

constexpr std::size_t kParallelOpThreshold = 1u << 21;

inline std::size_t round_up(std::size_t x, std::size_t to) {
  return (x + to - 1) / to * to;
}

inline std::size_t k_groups(std::size_t kc) { return (kc + 3) / 4; }

// ---- packing ---------------------------------------------------------
// Both packers emit the layout the 4-way dot-product instructions want:
// K grouped in 4s, so each 4-byte lane of a strip is one column's (B) or
// one row's (A) next four K values. Edge rows/columns/K-tails are padded
// with zeros; B's zero padding makes the A padding value irrelevant
// (0 * anything contributes nothing to the s32 accumulator).

// Vectorized row quantization (one fp32 row -> one contiguous u8 row).
// Must be bit-identical to quantize_act: cvtps_epi32 rounds to nearest
// even exactly like lrintf under the default rounding mode, and the
// clamp/zero-point steps are the same integer ops lane-wise.
using QuantRowFn = void (*)(const float*, std::size_t, float, std::int32_t,
                            std::uint8_t*);

void quant_row_scalar(const float* src, std::size_t kc, float inv_scale,
                      std::int32_t zp, std::uint8_t* dst) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    dst[kk] = quantize_act(src[kk], inv_scale, zp);
  }
}

#if defined(AGEBO_S8_X86)

[[gnu::target("avx2")]] void quant_row_avx2(const float* src, std::size_t kc,
                                            float inv_scale, std::int32_t zp,
                                            std::uint8_t* dst) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256i vzp = _mm256_set1_epi32(zp);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(127);
  std::size_t kk = 0;
  for (; kk + 8 <= kc; kk += 8) {
    __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(
        _mm256_loadu_ps(src + kk), vinv));
    q = _mm256_min_epi32(_mm256_max_epi32(_mm256_add_epi32(q, vzp), zero), hi);
    // q fits [0, 127]: truncating byte extraction is exact.
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), q);
    for (int t = 0; t < 8; ++t) dst[kk + t] = static_cast<std::uint8_t>(lanes[t]);
  }
  for (; kk < kc; ++kk) dst[kk] = quantize_act(src[kk], inv_scale, zp);
}

[[gnu::target("avx512f,avx512bw,avx512vl")]] void quant_row_avx512(
    const float* src,
                                                 std::size_t kc,
                                                 float inv_scale,
                                                 std::int32_t zp,
                                                 std::uint8_t* dst) {
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512i vzp = _mm512_set1_epi32(zp);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i hi = _mm512_set1_epi32(127);
  std::size_t kk = 0;
  for (; kk + 16 <= kc; kk += 16) {
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(
        _mm512_loadu_ps(src + kk), vinv));
    q = _mm512_min_epi32(_mm512_max_epi32(_mm512_add_epi32(q, vzp), zero), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kk),
                     _mm512_cvtepi32_epi8(q));
  }
  if (kk < kc) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (kc - kk)) - 1);
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(
        _mm512_maskz_loadu_ps(tail, src + kk), vinv));
    q = _mm512_min_epi32(_mm512_max_epi32(_mm512_add_epi32(q, vzp), zero), hi);
    _mm_mask_storeu_epi8(dst + kk, tail, _mm512_cvtepi32_epi8(q));
  }
}

#endif  // AGEBO_S8_X86

// A block (mc x kc) starting at row i0 / col p0 of the fp32 operand,
// quantized to u8 on the way in. Strip layout: for rows [i, i+MR), byte
// (g, r, t) lives at strip[(g * MR + r) * 4 + t] where kk = 4g + t.
// Quantization runs vectorized into a contiguous row staging buffer
// (`qrow`, >= kc bytes), then a cheap byte scatter fills the strips.
void pack_a_q(const float* a, std::size_t lda, std::size_t i0, std::size_t p0,
              std::size_t mc, std::size_t kc, float inv_scale, std::int32_t zp,
              std::uint8_t* ap, QuantRowFn quant_row, std::uint8_t* qrow) {
  const std::size_t kg = k_groups(kc);
  const std::size_t kpad = kg * 4;
  for (std::size_t i = 0; i < mc; i += MR) {
    const std::size_t ib = std::min(MR, mc - i);
    std::uint8_t* dst = ap + i * kg * 4;  // strip stride = kg * MR * 4
    for (std::size_t r = 0; r < ib; ++r) {
      quant_row(a + (i0 + i + r) * lda + p0, kc, inv_scale, zp, qrow);
      for (std::size_t kk = 0; kk < kc; ++kk) {
        dst[((kk >> 2) * MR + r) * 4 + (kk & 3)] = qrow[kk];
      }
      for (std::size_t kk = kc; kk < kpad; ++kk) {
        dst[((kk >> 2) * MR + r) * 4 + (kk & 3)] = 0;
      }
    }
    for (std::size_t r = ib; r < MR; ++r) {
      for (std::size_t kk = 0; kk < kpad; ++kk) {
        dst[((kk >> 2) * MR + r) * 4 + (kk & 3)] = 0;
      }
    }
  }
}

// B block (kc x nc) of the already-quantized s8 weight matrix, starting at
// row p0 / col j0. Strip layout: for cols [j, j+nr), byte (g, jr, t) lives
// at strip[(g * nr + jr) * 4 + t].
void pack_b_q(const std::int8_t* b, std::size_t ldb, std::size_t p0,
              std::size_t j0, std::size_t kc, std::size_t nc, std::size_t nr,
              std::int8_t* bp) {
  const std::size_t kg = k_groups(kc);
  const std::size_t kpad = kg * 4;
  for (std::size_t j = 0; j < nc; j += nr) {
    const std::size_t jb = std::min(nr, nc - j);
    std::int8_t* dst = bp + j * kg * 4;  // strip stride = kg * nr * 4
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const std::int8_t* src = b + (p0 + kk) * ldb + j0 + j;
      for (std::size_t jr = 0; jr < jb; ++jr) {
        dst[((kk >> 2) * nr + jr) * 4 + (kk & 3)] = src[jr];
      }
      for (std::size_t jr = jb; jr < nr; ++jr) {
        dst[((kk >> 2) * nr + jr) * 4 + (kk & 3)] = 0;
      }
    }
    for (std::size_t kk = kc; kk < kpad; ++kk) {
      for (std::size_t jr = 0; jr < nr; ++jr) {
        dst[((kk >> 2) * nr + jr) * 4 + (kk & 3)] = 0;
      }
    }
  }
}

// ---- microkernels ----------------------------------------------------
// MR x NR s32 tile over one K block. Integer accumulation is exact, so
// every tier computes identical results (see the header's 7-bit argument
// for why the AVX2 pairwise s16 step cannot saturate).

using MicroFn = void (*)(std::size_t, const std::uint8_t*, const std::int8_t*,
                         std::int32_t*);

inline std::int32_t a_dword(const std::uint8_t* ap, std::size_t idx) {
  std::int32_t v;
  std::memcpy(&v, ap + idx * 4, 4);
  return v;
}

// Scalar/SSE2 baseline reference tier, NR = 8.
void micro_s8_scalar(std::size_t kg, const std::uint8_t* ap,
                     const std::int8_t* bp, std::int32_t* acc) {
  constexpr std::size_t NR = 8;
  for (std::size_t x = 0; x < MR * NR; ++x) acc[x] = 0;
  for (std::size_t g = 0; g < kg; ++g) {
    const std::int8_t* brow = bp + g * NR * 4;
    const std::uint8_t* arow = ap + g * MR * 4;
    for (std::size_t r = 0; r < MR; ++r) {
      const std::uint8_t* av = arow + r * 4;
      std::int32_t* crow = acc + r * NR;
      for (std::size_t j = 0; j < NR; ++j) {
        const std::int8_t* bv = brow + j * 4;
        crow[j] += static_cast<std::int32_t>(av[0]) * bv[0] +
                   static_cast<std::int32_t>(av[1]) * bv[1] +
                   static_cast<std::int32_t>(av[2]) * bv[2] +
                   static_cast<std::int32_t>(av[3]) * bv[3];
      }
    }
  }
}

#if defined(AGEBO_S8_X86)

// AVX2 tier, NR = 16 (two ymm accumulator columns per row): maddubs
// (u8 x s8 -> pairwise s16) + madd (s16 pairs -> s32) gives one 4-deep dot
// product per dword lane. 12 accumulators + 2 B strips + 1 broadcast fit
// the 16 ymm registers.
[[gnu::target("avx2")]] void micro_s8_avx2(std::size_t kg,
                                           const std::uint8_t* ap,
                                           const std::int8_t* bp,
                                           std::int32_t* acc) {
  constexpr std::size_t NR = 16;
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i c0[MR];
  __m256i c1[MR];
  for (std::size_t r = 0; r < MR; ++r) {
    c0[r] = _mm256_setzero_si256();
    c1[r] = _mm256_setzero_si256();
  }
  for (std::size_t g = 0; g < kg; ++g) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + g * NR * 4));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + g * NR * 4 + 32));
    const std::uint8_t* arow = ap + g * MR * 4;
    for (std::size_t r = 0; r < MR; ++r) {
      const __m256i a = _mm256_set1_epi32(a_dword(arow, r));
      c0[r] = _mm256_add_epi32(
          c0[r], _mm256_madd_epi16(_mm256_maddubs_epi16(a, b0), ones));
      c1[r] = _mm256_add_epi32(
          c1[r], _mm256_madd_epi16(_mm256_maddubs_epi16(a, b1), ones));
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * NR), c0[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * NR + 8), c1[r]);
  }
}

// AVX-512 VNNI tier, NR = 32 (two zmm accumulator columns per row):
// vpdpbusd fuses the whole u8 x s8 4-deep dot product into the s32
// accumulator, no intermediate s16 stage at all.
[[gnu::target("avx512vnni,avx512bw,avx512f")]] void micro_s8_vnni(
    std::size_t kg, const std::uint8_t* ap, const std::int8_t* bp,
    std::int32_t* acc) {
  constexpr std::size_t NR = 32;
  __m512i c0[MR];
  __m512i c1[MR];
  for (std::size_t r = 0; r < MR; ++r) {
    c0[r] = _mm512_setzero_si512();
    c1[r] = _mm512_setzero_si512();
  }
  for (std::size_t g = 0; g < kg; ++g) {
    const __m512i b0 = _mm512_loadu_si512(bp + g * NR * 4);
    const __m512i b1 = _mm512_loadu_si512(bp + g * NR * 4 + 64);
    const std::uint8_t* arow = ap + g * MR * 4;
    for (std::size_t r = 0; r < MR; ++r) {
      const __m512i a = _mm512_set1_epi32(a_dword(arow, r));
      c0[r] = _mm512_dpbusd_epi32(c0[r], a, b0);
      c1[r] = _mm512_dpbusd_epi32(c1[r], a, b1);
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    _mm512_storeu_si512(acc + r * NR, c0[r]);
    _mm512_storeu_si512(acc + r * NR + 16, c1[r]);
  }
}

#endif  // AGEBO_S8_X86

// One dequantized output element. Shared (inline, identical op order)
// between the tile writeback and the naive reference so the two are
// bitwise comparable.
inline float dequant_one(std::int32_t q, std::size_t j,
                         const QuantEpilogue& ep) {
  float v = static_cast<float>(q - ep.comp[j]) * ep.dq_scale[j];
  if (ep.bias != nullptr) v += ep.bias[j];
  return v;
}

// Hot-path tile writeback (single K block, identity/relu): dequantize the
// s32 register tile straight into the fp32 C tile, vectorized. Must stay
// bit-identical to the scalar write_tile_s8 / dequant_one sequence: each
// lane performs float(q - comp) * dq (+ bias), then relu as max(v, 0) —
// the same elementwise op order, and maxps matches `v > 0 ? v : 0` on
// NaN/signed-zero inputs.
using EpiFn = void (*)(float*, std::size_t, std::size_t, std::size_t,
                       std::size_t, const std::int32_t*, const QuantEpilogue&,
                       std::size_t, bool);

#if defined(AGEBO_S8_X86)

[[gnu::target("avx2")]] void epi_tile_avx2(float* c, std::size_t ldc,
                                           std::size_t mr, std::size_t nr_eff,
                                           std::size_t acc_stride,
                                           const std::int32_t* acc,
                                           const QuantEpilogue& ep,
                                           std::size_t j0, bool relu) {
  const __m256 zero = _mm256_setzero_ps();
  for (std::size_t ir = 0; ir < mr; ++ir) {
    const std::int32_t* arow = acc + ir * acc_stride;
    float* crow = c + ir * ldc;
    std::size_t jr = 0;
    for (; jr + 8 <= nr_eff; jr += 8) {
      const __m256i q = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(arow + jr));
      const __m256i comp = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ep.comp + j0 + jr));
      __m256 v = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(q, comp)),
                               _mm256_loadu_ps(ep.dq_scale + j0 + jr));
      if (ep.bias != nullptr) {
        v = _mm256_add_ps(v, _mm256_loadu_ps(ep.bias + j0 + jr));
      }
      if (relu) v = _mm256_max_ps(v, zero);
      if (ep.accumulate) v = _mm256_add_ps(_mm256_loadu_ps(crow + jr), v);
      _mm256_storeu_ps(crow + jr, v);
    }
    for (; jr < nr_eff; ++jr) {
      float v = dequant_one(arow[jr], j0 + jr, ep);
      if (relu) v = v > 0.0f ? v : 0.0f;
      crow[jr] = ep.accumulate ? crow[jr] + v : v;
    }
  }
}

[[gnu::target("avx512f")]] void epi_tile_avx512(
    float* c, std::size_t ldc, std::size_t mr, std::size_t nr_eff,
    std::size_t acc_stride, const std::int32_t* acc, const QuantEpilogue& ep,
    std::size_t j0, bool relu) {
  const __m512 zero = _mm512_setzero_ps();
  for (std::size_t ir = 0; ir < mr; ++ir) {
    const std::int32_t* arow = acc + ir * acc_stride;
    float* crow = c + ir * ldc;
    std::size_t jr = 0;
    for (; jr + 16 <= nr_eff; jr += 16) {
      const __m512i q = _mm512_loadu_si512(arow + jr);
      const __m512i comp = _mm512_loadu_si512(ep.comp + j0 + jr);
      __m512 v = _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(q, comp)),
                               _mm512_loadu_ps(ep.dq_scale + j0 + jr));
      if (ep.bias != nullptr) {
        v = _mm512_add_ps(v, _mm512_loadu_ps(ep.bias + j0 + jr));
      }
      if (relu) v = _mm512_max_ps(v, zero);
      if (ep.accumulate) v = _mm512_add_ps(_mm512_loadu_ps(crow + jr), v);
      _mm512_storeu_ps(crow + jr, v);
    }
    if (jr < nr_eff) {
      const __mmask16 tail = static_cast<__mmask16>((1u << (nr_eff - jr)) - 1);
      const __m512i q = _mm512_maskz_loadu_epi32(tail, arow + jr);
      const __m512i comp = _mm512_maskz_loadu_epi32(tail, ep.comp + j0 + jr);
      __m512 v = _mm512_mul_ps(
          _mm512_cvtepi32_ps(_mm512_sub_epi32(q, comp)),
          _mm512_maskz_loadu_ps(tail, ep.dq_scale + j0 + jr));
      if (ep.bias != nullptr) {
        v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(tail, ep.bias + j0 + jr));
      }
      if (relu) v = _mm512_max_ps(v, zero);
      if (ep.accumulate) {
        v = _mm512_add_ps(_mm512_maskz_loadu_ps(tail, crow + jr), v);
      }
      _mm512_mask_storeu_ps(crow + jr, tail, v);
    }
  }
}

#endif  // AGEBO_S8_X86

struct S8Config {
  MicroFn micro;
  std::size_t nr;
  Int8Isa isa;
  QuantRowFn quant_row;
  EpiFn epi;  // nullptr = always use the scalar writeback
};

Int8Isa g_forced = Int8Isa::kAuto;  // test hook; see set_int8_isa

// Pick the widest tier the CPU supports, capped at the forced tier. A
// forced tier the hardware lacks falls through to the next one down.
S8Config select_s8_kernel(Int8Isa cap) {
#if defined(AGEBO_S8_X86)
  const bool allow_vnni = cap == Int8Isa::kAuto || cap == Int8Isa::kVnni;
  if (allow_vnni && __builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512f")) {
    return {micro_s8_vnni, 32, Int8Isa::kVnni, quant_row_avx512,
            epi_tile_avx512};
  }
  const bool allow_avx2 = cap != Int8Isa::kScalar;
  if (allow_avx2 && __builtin_cpu_supports("avx2")) {
    return {micro_s8_avx2, 16, Int8Isa::kAvx2, quant_row_avx2, epi_tile_avx2};
  }
#else
  (void)cap;
#endif
  return {micro_s8_scalar, 8, Int8Isa::kScalar, quant_row_scalar, nullptr};
}

const S8Config& s8_config() {
  static const S8Config kAutoCfg = select_s8_kernel(Int8Isa::kAuto);
  if (g_forced == Int8Isa::kAuto) return kAutoCfg;
  // Forced tiers are a cold test-only path; re-select per call so the
  // override can change between calls.
  static S8Config forced_cfg;
  forced_cfg = select_s8_kernel(g_forced);
  return forced_cfg;
}

// Tile writeback. While K blocks remain (`!last`), the raw s32 partial
// sums park in the csum staging panel; the final K block adds the tail,
// dequantizes, and applies bias + activation into the fp32 C tile. When k
// fits one K block (the hot path) csum is null and acc flows straight out.
void write_tile_s8(float* c, std::size_t ldc, std::int32_t* csum,
                   std::size_t ldcs, std::size_t mr, std::size_t nr_eff,
                   std::size_t acc_stride, const std::int32_t* acc, bool first,
                   bool last, const QuantEpilogue& ep, std::size_t j0) {
  for (std::size_t ir = 0; ir < mr; ++ir) {
    const std::int32_t* arow = acc + ir * acc_stride;
    if (!last) {
      std::int32_t* srow = csum + ir * ldcs;
      if (first) {
        for (std::size_t jr = 0; jr < nr_eff; ++jr) srow[jr] = arow[jr];
      } else {
        for (std::size_t jr = 0; jr < nr_eff; ++jr) srow[jr] += arow[jr];
      }
      continue;
    }
    const std::int32_t* srow = csum != nullptr ? csum + ir * ldcs : nullptr;
    float* crow = c + ir * ldc;
    for (std::size_t jr = 0; jr < nr_eff; ++jr) {
      const std::int32_t q = arow[jr] + (srow != nullptr ? srow[jr] : 0);
      float v = dequant_one(q, j0 + jr, ep);
      switch (ep.act) {
        case Activation::kIdentity:
          break;
        case Activation::kRelu:
          v = v > 0.0f ? v : 0.0f;
          break;
        default:
          v = activate_scalar(ep.act, v);
          break;
      }
      crow[jr] = ep.accumulate ? crow[jr] + v : v;
    }
  }
}

// k == 0 degenerates to "dequantized epilogue of an all-zero accumulator".
void epilogue_only_s8(std::size_t m, std::size_t n, float* c, std::size_t ldc,
                      const QuantEpilogue& ep) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const float v = activate_scalar(ep.act, dequant_one(0, j, ep));
      crow[j] = ep.accumulate ? crow[j] + v : v;
    }
  }
}

// Serial blocked int8 GEMM over the full [0, m) row range it is given.
// `prepacked`, when non-null, supplies the B panels in exactly the layout
// and (jc, pc) order this function would pack them, so the per-call B
// packing — the dominant overhead for a frozen model's constant weights —
// is skipped entirely.
void gemm_s8_serial(std::size_t m, std::size_t n, std::size_t k,
                    const float* a, std::size_t lda, float a_inv_scale,
                    std::int32_t a_zp, const std::int8_t* wq, std::size_t ldb,
                    float* c, std::size_t ldc, const QuantEpilogue& ep,
                    const std::int8_t* prepacked) {
  const S8Config cfg = s8_config();
  const std::size_t nr = cfg.nr;
  Workspace::Scope scope(Workspace::tls());
  const std::size_t kc_max = std::min(k, KC);
  const std::size_t kg_max = k_groups(kc_max);
  // The Workspace hands out floats; the int8 panels reinterpret the same
  // 64-byte-aligned storage (1 float backs 4 packed bytes / 1 s32 lane).
  std::int8_t* bpack =
      prepacked != nullptr
          ? nullptr
          : reinterpret_cast<std::int8_t*>(
                scope.alloc(kg_max * round_up(std::min(n, NC), nr)));
  auto* apack = reinterpret_cast<std::uint8_t*>(
      scope.alloc(kg_max * round_up(std::min(m, MC), MR)));
  // Row staging for the vectorized activation quantizer (kc bytes).
  auto* qrow = reinterpret_cast<std::uint8_t*>(scope.alloc(kg_max));
  // Multi-K-block staging for the s32 partial sums (cold path: a single
  // K block covers k <= 1024, i.e. every search-space layer).
  std::int32_t* csum = nullptr;
  if (k > KC) {
    csum = reinterpret_cast<std::int32_t*>(scope.alloc(m * std::min(n, NC)));
  }
  alignas(64) std::int32_t acc[MR * NR_MAX];

  std::size_t boff = 0;  // running offset into the prepacked panels
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const std::size_t kg = k_groups(kc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      const std::int8_t* bblock;
      if (prepacked != nullptr) {
        bblock = prepacked + boff;
        boff += kg * round_up(nc, nr) * 4;
      } else {
        pack_b_q(wq, ldb, pc, jc, kc, nc, nr, bpack);
        bblock = bpack;
      }
      // Single-K-block tiles with an identity/relu tail take the
      // vectorized writeback; everything else (multi-K staging, exotic
      // activations, scalar tier) falls back to the scalar path.
      const bool fast_epi =
          cfg.epi != nullptr && csum == nullptr &&
          (ep.act == Activation::kIdentity || ep.act == Activation::kRelu);
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        pack_a_q(a, lda, ic, pc, mc, kc, a_inv_scale, a_zp, apack,
                 cfg.quant_row, qrow);
        for (std::size_t jr = 0; jr < nc; jr += nr) {
          for (std::size_t ir = 0; ir < mc; ir += MR) {
            cfg.micro(kg, apack + ir * kg * 4, bblock + jr * kg * 4, acc);
            if (fast_epi) {
              cfg.epi(c + (ic + ir) * ldc + jc + jr, ldc,
                      std::min(MR, mc - ir), std::min(nr, nc - jr), nr, acc,
                      ep, jc + jr, ep.act == Activation::kRelu);
            } else {
              write_tile_s8(c + (ic + ir) * ldc + jc + jr, ldc,
                            csum != nullptr ? csum + (ic + ir) * nc + jr
                                            : nullptr,
                            nc, std::min(MR, mc - ir), std::min(nr, nc - jr),
                            nr, acc, first, last, ep, jc + jr);
            }
          }
        }
      }
    }
  }
}

}  // namespace

PackedWeightsS8 pack_weights_s8(const std::int8_t* wq, std::size_t ldb,
                                std::size_t k, std::size_t n) {
  const S8Config cfg = s8_config();
  PackedWeightsS8 pb;
  pb.k = k;
  pb.n = n;
  pb.nr = cfg.nr;
  if (k == 0 || n == 0) return pb;
  std::size_t total = 0;
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      total += k_groups(std::min(KC, k - pc)) * round_up(nc, cfg.nr) * 4;
    }
  }
  pb.data.resize(total);
  std::size_t off = 0;
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      pack_b_q(wq, ldb, pc, jc, kc, nc, cfg.nr, pb.data.data() + off);
      off += k_groups(kc) * round_up(nc, cfg.nr) * 4;
    }
  }
  return pb;
}

void gemm_u8s8(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, float a_inv_scale, std::int32_t a_zp,
               const std::int8_t* wq, std::size_t ldb, float* c,
               std::size_t ldc, const QuantEpilogue& ep,
               const PackedWeightsS8* packed) {
  obs::add_flops(2ull * m * n * k);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    epilogue_only_s8(m, n, c, ldc, ep);
    return;
  }
  // Honor the prepack only when it matches this call's shape and the
  // dispatched tier's strip width (a set_int8_isa override changes NR).
  const std::int8_t* prepacked = nullptr;
  if (packed != nullptr && !packed->empty() && packed->k == k &&
      packed->n == n && packed->nr == s8_config().nr) {
    prepacked = packed->data.data();
  }

  const std::size_t nthreads = max_threads();
  const bool small = m * n < kParallelOpThreshold / (2 * k) || m < 2 * MR;
  if (nthreads <= 1 || small) {
    gemm_s8_serial(m, n, k, a, lda, a_inv_scale, a_zp, wq, ldb, c, ldc, ep,
                   prepacked);
    return;
  }

  // Disjoint M-ranges, one worker each; integer accumulation plus a fixed
  // elementwise epilogue order makes the result identical for any thread
  // count (same contract as the fp32 driver).
  const std::size_t nchunks = std::min(nthreads, (m + MR - 1) / MR);
  const std::size_t rows_per_chunk = round_up((m + nchunks - 1) / nchunks, MR);
  parallel_for(nchunks, [&](std::size_t chunk) {
    const std::size_t i0 = chunk * rows_per_chunk;
    if (i0 >= m) return;
    const std::size_t mc = std::min(rows_per_chunk, m - i0);
    gemm_s8_serial(mc, n, k, a + i0 * lda, lda, a_inv_scale, a_zp, wq, ldb,
                   c + i0 * ldc, ldc, ep, prepacked);
  });
}

void gemm_u8s8_naive(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, float a_inv_scale,
                     std::int32_t a_zp, const std::int8_t* wq, std::size_t ldb,
                     float* c, std::size_t ldc, const QuantEpilogue& ep) {
  std::vector<std::uint8_t> aq(k);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::size_t kk = 0; kk < k; ++kk) {
      aq[kk] = quantize_act(arow[kk], a_inv_scale, a_zp);
    }
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(aq[kk]) *
               static_cast<std::int32_t>(wq[kk * ldb + j]);
      }
      float v = dequant_one(acc, j, ep);
      switch (ep.act) {
        case Activation::kIdentity:
          break;
        case Activation::kRelu:
          v = v > 0.0f ? v : 0.0f;
          break;
        default:
          v = activate_scalar(ep.act, v);
          break;
      }
      crow[j] = ep.accumulate ? crow[j] + v : v;
    }
  }
}

void set_int8_isa(Int8Isa isa) { g_forced = isa; }

Int8Isa active_int8_isa() { return s8_config().isa; }

const char* to_string(Int8Isa isa) {
  switch (isa) {
    case Int8Isa::kAuto:
      return "auto";
    case Int8Isa::kVnni:
      return "vnni";
    case Int8Isa::kAvx2:
      return "avx2";
    case Int8Isa::kScalar:
      return "scalar";
  }
  return "?";
}

}  // namespace agebo::nn::kernels
