#include "nn/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::nn {

namespace {

constexpr const char* kMagic = "agebo-graphnet";

std::string activation_token(Activation a) { return to_string(a); }

Activation activation_from_token(const std::string& token) {
  for (int i = 0; i < kNumActivations; ++i) {
    const auto act = activation_from_index(i);
    if (to_string(act) == token) return act;
  }
  throw std::runtime_error("load_graphnet: unknown activation " + token);
}

void expect_token(std::istream& is, const std::string& want) {
  std::string got;
  if (!(is >> got) || got != want) {
    throw std::runtime_error("load_graphnet: expected '" + want + "', got '" +
                             got + "'");
  }
}

}  // namespace

void save_graphnet(GraphNet& net, std::ostream& os) {
  const GraphSpec& spec = net.spec();
  os << kMagic << " v1\n";
  os << "input " << spec.input_dim << " output " << spec.output_dim << '\n';
  os << "nodes " << spec.nodes.size() << '\n';
  for (const auto& node : spec.nodes) {
    os << "node ";
    if (node.is_identity) {
      os << "identity";
    } else {
      os << "dense " << node.units << ' ' << activation_token(node.act);
    }
    os << " skips " << node.skips.size();
    for (std::size_t s : node.skips) os << ' ' << s;
    os << '\n';
  }
  os << "output_skips " << spec.output_skips.size();
  for (std::size_t s : spec.output_skips) os << ' ' << s;
  os << '\n';

  auto params = net.params();
  os << "params " << params.size() << '\n';
  os.precision(9);
  for (const auto& block : params) {
    os << "block " << block.values->size() << '\n';
    for (std::size_t i = 0; i < block.values->size(); ++i) {
      os << (*block.values)[i] << (i + 1 == block.values->size() ? '\n' : ' ');
    }
  }
}

void save_graphnet_file(GraphNet& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_graphnet_file: cannot open " + path);
  save_graphnet(net, os);
}

std::unique_ptr<GraphNet> load_graphnet(std::istream& is) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != kMagic || version != "v1") {
    throw std::runtime_error("load_graphnet: bad header");
  }

  GraphSpec spec;
  expect_token(is, "input");
  is >> spec.input_dim;
  expect_token(is, "output");
  is >> spec.output_dim;

  expect_token(is, "nodes");
  std::size_t m = 0;
  is >> m;
  spec.nodes.resize(m);
  for (auto& node : spec.nodes) {
    expect_token(is, "node");
    std::string kind;
    is >> kind;
    if (kind == "identity") {
      node.is_identity = true;
    } else if (kind == "dense") {
      std::string act;
      is >> node.units >> act;
      node.act = activation_from_token(act);
    } else {
      throw std::runtime_error("load_graphnet: unknown node kind " + kind);
    }
    expect_token(is, "skips");
    std::size_t k = 0;
    is >> k;
    node.skips.resize(k);
    for (auto& s : node.skips) is >> s;
  }
  expect_token(is, "output_skips");
  std::size_t k = 0;
  is >> k;
  spec.output_skips.resize(k);
  for (auto& s : spec.output_skips) is >> s;
  if (!is) throw std::runtime_error("load_graphnet: truncated spec");

  Rng rng(0);  // weights are overwritten below
  auto net = std::make_unique<GraphNet>(spec, rng);
  auto params = net->params();

  expect_token(is, "params");
  std::size_t n_blocks = 0;
  is >> n_blocks;
  if (n_blocks != params.size()) {
    throw std::runtime_error("load_graphnet: parameter block count mismatch");
  }
  for (auto& block : params) {
    expect_token(is, "block");
    std::size_t len = 0;
    is >> len;
    if (len != block.values->size()) {
      throw std::runtime_error("load_graphnet: parameter block size mismatch");
    }
    for (auto& v : *block.values) is >> v;
  }
  if (!is) throw std::runtime_error("load_graphnet: truncated parameters");
  return net;
}

std::unique_ptr<GraphNet> load_graphnet_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_graphnet_file: cannot open " + path);
  return load_graphnet(is);
}

}  // namespace agebo::nn
