#include "nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agebo::nn {

namespace {

constexpr const char* kMagic = "agebo-graphnet";

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string checksum_hex(const std::string& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(bytes)));
  return buf;
}

Activation activation_from_token(const std::string& token) {
  for (int i = 0; i < kNumActivations; ++i) {
    const auto act = activation_from_index(i);
    if (to_string(act) == token) return act;
  }
  throw std::runtime_error("load_artifact: unknown activation " + token);
}

void expect_token(std::istream& is, const std::string& want) {
  std::string got;
  if (!(is >> got) || got != want) {
    throw std::runtime_error("load_artifact: expected '" + want + "', got '" +
                             got + "'");
  }
}

/// Everything after the version token: meta (v2+), spec, parameters,
/// quant (v3).
ModelArtifact parse_body(std::istream& is, int version) {
  ModelArtifact artifact;
  if (version >= 2) {
    expect_token(is, "meta");
    std::size_t n_meta = 0;
    is >> n_meta;
    for (std::size_t i = 0; i < n_meta; ++i) {
      expect_token(is, "kv");
      std::string key;
      std::string value;
      is >> key;
      is.ignore(1);  // the separating space
      std::getline(is, value);
      artifact.metadata.emplace_back(key, value);
    }
  }

  GraphSpec& spec = artifact.spec;
  expect_token(is, "input");
  is >> spec.input_dim;
  expect_token(is, "output");
  is >> spec.output_dim;

  expect_token(is, "nodes");
  std::size_t m = 0;
  is >> m;
  spec.nodes.resize(m);
  for (auto& node : spec.nodes) {
    expect_token(is, "node");
    std::string kind;
    is >> kind;
    if (kind == "identity") {
      node.is_identity = true;
    } else if (kind == "dense") {
      std::string act;
      is >> node.units >> act;
      node.act = activation_from_token(act);
    } else {
      throw std::runtime_error("load_artifact: unknown node kind " + kind);
    }
    expect_token(is, "skips");
    std::size_t k = 0;
    is >> k;
    node.skips.resize(k);
    for (auto& s : node.skips) is >> s;
  }
  expect_token(is, "output_skips");
  std::size_t k = 0;
  is >> k;
  spec.output_skips.resize(k);
  for (auto& s : spec.output_skips) is >> s;
  if (!is) throw std::runtime_error("load_artifact: truncated spec");
  spec.validate();

  expect_token(is, "params");
  std::size_t n_blocks = 0;
  is >> n_blocks;
  artifact.blocks.resize(n_blocks);
  for (auto& block : artifact.blocks) {
    expect_token(is, "block");
    std::size_t len = 0;
    is >> len;
    if (!is) throw std::runtime_error("load_artifact: truncated parameters");
    block.resize(len);
    for (auto& v : block) is >> v;
  }
  if (!is) throw std::runtime_error("load_artifact: truncated parameters");

  if (version >= 3) {
    expect_token(is, "quant");
    std::size_t n_qlayers = 0;
    is >> n_qlayers;
    artifact.quant.resize(n_qlayers);
    for (auto& ql : artifact.quant) {
      expect_token(is, "qlayer");
      is >> ql.index >> ql.rows >> ql.cols >> ql.input.zero_point >>
          ql.input.scale;
      if (!is) throw std::runtime_error("load_artifact: bad qlayer header");
      expect_token(is, "wscales");
      ql.w_scales.resize(ql.cols);
      for (auto& s : ql.w_scales) is >> s;
      expect_token(is, "wq");
      ql.wq.resize(ql.rows * ql.cols);
      for (auto& q : ql.wq) {
        int v = 0;
        is >> v;
        if (v < -127 || v > 127) {
          throw std::runtime_error(
              "load_artifact: quantized weight out of s8 range");
        }
        q = static_cast<std::int8_t>(v);
      }
    }
    if (!is) throw std::runtime_error("load_artifact: truncated quant section");
  }
  return artifact;
}

}  // namespace

std::string ModelArtifact::meta(const std::string& key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) return v;
  }
  return "";
}

ModelArtifact freeze_graphnet(
    GraphNet& net, std::vector<std::pair<std::string, std::string>> metadata) {
  ModelArtifact artifact;
  artifact.spec = net.spec();
  artifact.metadata = std::move(metadata);
  for (const auto& ref : net.params()) {
    artifact.blocks.push_back(*ref.values);
  }
  return artifact;
}

std::unique_ptr<GraphNet> instantiate_graphnet(const ModelArtifact& artifact) {
  Rng rng(0);  // initial weights are overwritten below
  auto net = std::make_unique<GraphNet>(artifact.spec, rng);
  auto params = net->params();
  if (params.size() != artifact.blocks.size()) {
    throw std::runtime_error("instantiate_graphnet: block count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].values->size() != artifact.blocks[i].size()) {
      throw std::runtime_error("instantiate_graphnet: block size mismatch");
    }
    *params[i].values = artifact.blocks[i];
  }
  return net;
}

void save_artifact(const ModelArtifact& artifact, std::ostream& os) {
  std::ostringstream body;
  // fp32-only artifacts stay on v2 so existing readers keep loading them;
  // the quant section is what v3 adds.
  body << kMagic << (artifact.has_quant() ? " v3\n" : " v2\n");
  body << "meta " << artifact.metadata.size() << '\n';
  for (const auto& [key, value] : artifact.metadata) {
    body << "kv " << key << ' ' << value << '\n';
  }
  const GraphSpec& spec = artifact.spec;
  body << "input " << spec.input_dim << " output " << spec.output_dim << '\n';
  body << "nodes " << spec.nodes.size() << '\n';
  for (const auto& node : spec.nodes) {
    body << "node ";
    if (node.is_identity) {
      body << "identity";
    } else {
      body << "dense " << node.units << ' ' << to_string(node.act);
    }
    body << " skips " << node.skips.size();
    for (std::size_t s : node.skips) body << ' ' << s;
    body << '\n';
  }
  body << "output_skips " << spec.output_skips.size();
  for (std::size_t s : spec.output_skips) body << ' ' << s;
  body << '\n';

  body << "params " << artifact.blocks.size() << '\n';
  body.precision(9);  // FLT_DECIMAL_DIG: bit-exact float round trip
  for (const auto& block : artifact.blocks) {
    body << "block " << block.size() << '\n';
    for (std::size_t i = 0; i < block.size(); ++i) {
      body << block[i] << (i + 1 == block.size() ? '\n' : ' ');
    }
  }

  if (artifact.has_quant()) {
    body << "quant " << artifact.quant.size() << '\n';
    for (const auto& ql : artifact.quant) {
      body << "qlayer " << ql.index << ' ' << ql.rows << ' ' << ql.cols << ' '
           << ql.input.zero_point << ' ' << ql.input.scale << '\n';
      body << "wscales";
      for (const float s : ql.w_scales) body << ' ' << s;
      body << '\n';
      body << "wq";
      for (std::size_t i = 0; i < ql.wq.size(); ++i) {
        // Line-wrap at row boundaries to keep the artifact diffable.
        body << (i > 0 && i % ql.cols == 0 ? '\n' : ' ')
             << static_cast<int>(ql.wq[i]);
      }
      body << '\n';
    }
  }

  const std::string payload = body.str();
  os << payload << "checksum " << checksum_hex(payload) << '\n';
}

void save_artifact_file(const ModelArtifact& artifact, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_artifact_file: cannot open " + path);
  save_artifact(artifact, os);
}

ModelArtifact load_artifact(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  std::istringstream head(text);
  std::string magic;
  std::string version;
  if (!(head >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_artifact: bad header");
  }
  if (version == "v1") {
    return parse_body(head, /*version=*/1);
  }
  if (version != "v2" && version != "v3") {
    throw std::runtime_error("load_artifact: unsupported version '" + version +
                             "' (expected v1, v2, or v3)");
  }

  // v2/v3: the final line is `checksum <hex>` over every byte before it.
  const auto pos = text.rfind("\nchecksum ");
  if (pos == std::string::npos) {
    throw std::runtime_error(
        "load_artifact: missing checksum line (truncated artifact?)");
  }
  const std::string payload = text.substr(0, pos + 1);
  std::istringstream tail(text.substr(pos + 1));
  expect_token(tail, "checksum");
  std::string recorded;
  tail >> recorded;
  if (recorded != checksum_hex(payload)) {
    throw std::runtime_error(
        "load_artifact: checksum mismatch — artifact corrupted or truncated");
  }

  std::istringstream body(payload);
  body >> magic >> version;
  return parse_body(body, version == "v3" ? 3 : 2);
}

ModelArtifact load_artifact_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_artifact_file: cannot open " + path);
  return load_artifact(is);
}

void save_graphnet(GraphNet& net, std::ostream& os) {
  const ModelArtifact artifact = freeze_graphnet(net);
  save_artifact(artifact, os);
}

void save_graphnet_file(GraphNet& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_graphnet_file: cannot open " + path);
  save_graphnet(net, os);
}

std::unique_ptr<GraphNet> load_graphnet(std::istream& is) {
  return instantiate_graphnet(load_artifact(is));
}

std::unique_ptr<GraphNet> load_graphnet_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_graphnet_file: cannot open " + path);
  return load_graphnet(is);
}

}  // namespace agebo::nn
