#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agebo::nn {

void softmax(const Tensor& logits, Tensor& probs) {
  probs.rows = logits.rows;
  probs.cols = logits.cols;
  probs.v.resize(logits.v.size());
  for (std::size_t i = 0; i < logits.rows; ++i) {
    const float* in = logits.row(i);
    float* out = probs.v.data() + i * logits.cols;
    float mx = in[0];
    for (std::size_t j = 1; j < logits.cols; ++j) mx = std::max(mx, in[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < logits.cols; ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    for (std::size_t j = 0; j < logits.cols; ++j) out[j] /= sum;
  }
}

double softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                             Tensor& dlogits) {
  if (labels.size() != logits.rows) {
    throw std::invalid_argument("softmax_cross_entropy: label count");
  }
  softmax(logits, dlogits);  // reuse dlogits buffer to hold probs first
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(logits.rows);
  for (std::size_t i = 0; i < logits.rows; ++i) {
    float* row = dlogits.v.data() + i * logits.cols;
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= logits.cols) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    loss -= std::log(std::max(row[label], 1e-12f));
    row[label] -= 1.0f;
    for (std::size_t j = 0; j < logits.cols; ++j) row[j] *= inv_n;
  }
  return loss / static_cast<double>(logits.rows);
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  if (labels.size() != logits.rows || logits.rows == 0) {
    throw std::invalid_argument("accuracy: shape");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.rows; ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows);
}

std::vector<int> predict_classes(const Tensor& logits) {
  std::vector<int> out(logits.rows);
  for (std::size_t i = 0; i < logits.rows; ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace agebo::nn
