#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

namespace agebo::nn {

ActQuant act_quant_from_range(float lo, float hi) {
  // Widen to include 0 so the real value 0.0 quantizes exactly (q == zp).
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  ActQuant q;
  const float range = hi - lo;
  if (!(range > 0.0f) || !std::isfinite(range)) {
    // Degenerate calibration (constant input, empty sample): any scale
    // reproduces the single value through the zero point; pick 1.
    q.scale = 1.0f;
    q.zero_point = 0;
    return q;
  }
  q.scale = range / 127.0f;
  q.zero_point = static_cast<std::int32_t>(std::lrintf(-lo / q.scale));
  q.zero_point = std::clamp(q.zero_point, 0, 127);
  return q;
}

void quantize_weights_per_col(const float* w, std::size_t rows,
                              std::size_t cols, QuantLayer& ql) {
  ql.rows = rows;
  ql.cols = cols;
  ql.w_scales.assign(cols, 1.0f);
  ql.wq.assign(rows * cols, 0);
  for (std::size_t j = 0; j < cols; ++j) {
    float maxabs = 0.0f;
    for (std::size_t i = 0; i < rows; ++i) {
      maxabs = std::max(maxabs, std::abs(w[i * cols + j]));
    }
    // An all-zero column keeps scale 1 and all-zero codes.
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    ql.w_scales[j] = scale;
    const float inv = 1.0f / scale;
    for (std::size_t i = 0; i < rows; ++i) {
      long q = std::lrintf(w[i * cols + j] * inv);
      if (q < -127) q = -127;
      if (q > 127) q = 127;
      ql.wq[i * cols + j] = static_cast<std::int8_t>(q);
    }
  }
}

std::vector<std::int32_t> zero_point_compensation(const QuantLayer& ql) {
  std::vector<std::int32_t> comp(ql.cols, 0);
  for (std::size_t i = 0; i < ql.rows; ++i) {
    const std::int8_t* row = ql.wq.data() + i * ql.cols;
    for (std::size_t j = 0; j < ql.cols; ++j) {
      comp[j] += static_cast<std::int32_t>(row[j]);
    }
  }
  for (auto& v : comp) v *= ql.input.zero_point;
  return comp;
}

std::vector<float> dequant_scales(const QuantLayer& ql) {
  std::vector<float> dq(ql.cols);
  for (std::size_t j = 0; j < ql.cols; ++j) {
    dq[j] = ql.input.scale * ql.w_scales[j];
  }
  return dq;
}

}  // namespace agebo::nn
