// Architecture and population statistics: structural properties of a single
// genome (depth, widths, skip density, parameter count) and diversity
// measures over a set of genomes. Used to study how the aging population
// evolves (bench_ablations' aging-vs-elitist comparison) and to summarize
// discovered models.
#pragma once

#include <cstddef>
#include <vector>

#include "nas/search_space.hpp"

namespace agebo::nas {

struct ArchStats {
  std::size_t n_dense_nodes = 0;     ///< non-identity variable nodes
  std::size_t n_identity_nodes = 0;
  std::size_t n_skips = 0;           ///< active skip connections (incl. output)
  std::size_t total_units = 0;       ///< sum of dense widths
  std::size_t max_width = 0;
  /// Trainable parameters for a given problem shape.
  std::size_t n_params = 0;
};

ArchStats arch_stats(const SearchSpace& space, const Genome& g,
                     std::size_t input_dim, std::size_t n_classes);

/// Hamming distance between two genomes (number of differing decisions).
std::size_t hamming(const Genome& a, const Genome& b);

struct PopulationDiversity {
  std::size_t n_unique = 0;
  /// Mean pairwise Hamming distance (0 when fewer than two genomes).
  double mean_hamming = 0.0;
  /// Fraction of decisions where the population is unanimous.
  double fixed_fraction = 0.0;
};

PopulationDiversity population_diversity(const std::vector<Genome>& genomes);

}  // namespace agebo::nas
