// The paper's neural architecture search space for tabular data (Sec III-A).
//
// With the default configuration there are 37 categorical decision
// variables: 10 variable nodes (31 dense-layer types each: 6 unit counts x
// 5 activations, plus identity) and 27 skip-connection nodes (zero /
// identity each). For a pair of consecutive variable nodes N_k, N_{k+1},
// skip-connection nodes allow connections from the three previous
// non-consecutive nodes N_{k-1}, N_{k-2}, N_{k-3} (node 0 is the input);
// the output node also has three. Total size 31^10 * 2^27 ≈ 1.1e23.
//
// A Genome is the flat decision vector; this class owns the encoding, random
// sampling, mutation, and decoding into an nn::GraphSpec.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/graph_net.hpp"

namespace agebo::nas {

/// Flat vector of categorical decisions; decision i takes values in
/// [0, arity(i)).
using Genome = std::vector<int>;

struct SpaceConfig {
  std::size_t n_variable_nodes = 10;
  std::vector<std::size_t> units = {16, 32, 48, 64, 80, 96};
  std::vector<nn::Activation> activations = {
      nn::Activation::kIdentity, nn::Activation::kSwish, nn::Activation::kRelu,
      nn::Activation::kTanh, nn::Activation::kSigmoid};
  /// Skip-connection nodes per target (to the 3 previous non-consecutive
  /// predecessors).
  std::size_t max_skips = 3;
};

class SearchSpace {
 public:
  explicit SearchSpace(SpaceConfig cfg = {});

  std::size_t n_decisions() const { return arities_.size(); }
  /// Number of choices for decision i (31 for variable nodes, 2 for skips).
  std::size_t arity(std::size_t i) const { return arities_[i]; }
  std::size_t n_variable_nodes() const { return cfg_.n_variable_nodes; }
  /// Number of dense-layer op choices per variable node (incl. identity).
  std::size_t n_ops() const;

  /// log10 of the total number of architectures.
  double log10_size() const;

  Genome random(Rng& rng) const;

  /// AgE mutation: pick one decision uniformly, resample excluding the
  /// current value (Sec III-C).
  Genome mutate(const Genome& parent, Rng& rng) const;

  /// Decode to a concrete network spec for a given tabular problem.
  nn::GraphSpec to_graph_spec(const Genome& g, std::size_t input_dim,
                              std::size_t n_classes) const;

  /// One-hot encoding of all decisions (for the Fig 7 PCA).
  std::vector<double> one_hot(const Genome& g) const;
  std::size_t one_hot_dim() const;

  /// Stable string key for uniqueness counting (Fig 5).
  static std::string key(const Genome& g);

  /// Throws std::invalid_argument when g is not a valid point.
  void validate(const Genome& g) const;

  std::string describe(const Genome& g) const;

 private:
  /// Number of skip slots for variable node j (1-based).
  std::size_t skip_slots_for_node(std::size_t j) const;
  /// Decision index of variable node j's op.
  std::size_t op_index(std::size_t j) const;

  SpaceConfig cfg_;
  std::vector<std::size_t> arities_;
  /// offsets_[j] = first decision index for variable node j (1-based),
  /// offsets_.back() = first output-skip decision.
  std::vector<std::size_t> offsets_;
};

}  // namespace agebo::nas
