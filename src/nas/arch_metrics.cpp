#include "nas/arch_metrics.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "nn/graph_net.hpp"

namespace agebo::nas {

ArchStats arch_stats(const SearchSpace& space, const Genome& g,
                     std::size_t input_dim, std::size_t n_classes) {
  const auto spec = space.to_graph_spec(g, input_dim, n_classes);
  ArchStats stats;
  for (const auto& node : spec.nodes) {
    if (node.is_identity) {
      ++stats.n_identity_nodes;
    } else {
      ++stats.n_dense_nodes;
      stats.total_units += node.units;
      stats.max_width = std::max(stats.max_width, node.units);
    }
    stats.n_skips += node.skips.size();
  }
  stats.n_skips += spec.output_skips.size();

  Rng rng(0);
  nn::GraphNet net(spec, rng);
  stats.n_params = net.num_params();
  return stats;
}

std::size_t hamming(const Genome& a, const Genome& b) {
  if (a.size() != b.size()) throw std::invalid_argument("hamming: length");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

PopulationDiversity population_diversity(const std::vector<Genome>& genomes) {
  PopulationDiversity out;
  if (genomes.empty()) return out;
  const std::size_t dims = genomes[0].size();

  std::set<std::string> unique;
  for (const auto& g : genomes) unique.insert(SearchSpace::key(g));
  out.n_unique = unique.size();

  if (genomes.size() >= 2) {
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      for (std::size_t j = i + 1; j < genomes.size(); ++j) {
        sum += static_cast<double>(hamming(genomes[i], genomes[j]));
        ++pairs;
      }
    }
    out.mean_hamming = sum / static_cast<double>(pairs);
  }

  std::size_t fixed = 0;
  for (std::size_t d = 0; d < dims; ++d) {
    bool unanimous = true;
    for (const auto& g : genomes) {
      if (g[d] != genomes[0][d]) {
        unanimous = false;
        break;
      }
    }
    if (unanimous) ++fixed;
  }
  out.fixed_fraction =
      dims > 0 ? static_cast<double>(fixed) / static_cast<double>(dims) : 0.0;
  return out;
}

}  // namespace agebo::nas
