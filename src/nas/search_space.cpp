#include "nas/search_space.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace agebo::nas {

SearchSpace::SearchSpace(SpaceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.n_variable_nodes == 0) {
    throw std::invalid_argument("SearchSpace: zero variable nodes");
  }
  if (cfg_.units.empty() || cfg_.activations.empty()) {
    throw std::invalid_argument("SearchSpace: empty op lists");
  }
  const std::size_t ops = n_ops();
  offsets_.reserve(cfg_.n_variable_nodes + 1);
  for (std::size_t j = 1; j <= cfg_.n_variable_nodes; ++j) {
    offsets_.push_back(arities_.size());
    arities_.push_back(ops);
    for (std::size_t s = 0; s < skip_slots_for_node(j); ++s) arities_.push_back(2);
  }
  offsets_.push_back(arities_.size());
  // Output node skips: to N_{m-1}, N_{m-2}, N_{m-3} (bounded by existing
  // non-consecutive predecessors of the base N_m).
  const std::size_t out_slots =
      std::min(cfg_.max_skips, cfg_.n_variable_nodes);
  for (std::size_t s = 0; s < out_slots; ++s) arities_.push_back(2);
}

std::size_t SearchSpace::n_ops() const {
  return cfg_.units.size() * cfg_.activations.size() + 1;  // + identity
}

std::size_t SearchSpace::skip_slots_for_node(std::size_t j) const {
  // Variable node j's base is node j-1; non-consecutive predecessors are
  // node ids 0..j-2, so j-1 candidates, capped at max_skips.
  return std::min(cfg_.max_skips, j - 1);
}

std::size_t SearchSpace::op_index(std::size_t j) const { return offsets_[j - 1]; }

double SearchSpace::log10_size() const {
  double lg = 0.0;
  for (std::size_t a : arities_) lg += std::log10(static_cast<double>(a));
  return lg;
}

Genome SearchSpace::random(Rng& rng) const {
  Genome g(arities_.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<int>(rng.index(arities_[i]));
  }
  return g;
}

Genome SearchSpace::mutate(const Genome& parent, Rng& rng) const {
  validate(parent);
  Genome child = parent;
  const std::size_t i = rng.index(child.size());
  // Resample excluding the current value: draw from arity-1 and shift.
  const auto current = static_cast<std::size_t>(child[i]);
  std::size_t nv = rng.index(arities_[i] - 1);
  if (nv >= current) ++nv;
  child[i] = static_cast<int>(nv);
  return child;
}

void SearchSpace::validate(const Genome& g) const {
  if (g.size() != arities_.size()) {
    throw std::invalid_argument("Genome: wrong length");
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] < 0 || static_cast<std::size_t>(g[i]) >= arities_[i]) {
      throw std::invalid_argument("Genome: decision out of range");
    }
  }
}

nn::GraphSpec SearchSpace::to_graph_spec(const Genome& g, std::size_t input_dim,
                                         std::size_t n_classes) const {
  validate(g);
  nn::GraphSpec spec;
  spec.input_dim = input_dim;
  spec.output_dim = n_classes;
  spec.nodes.resize(cfg_.n_variable_nodes);

  const std::size_t n_acts = cfg_.activations.size();
  for (std::size_t j = 1; j <= cfg_.n_variable_nodes; ++j) {
    nn::NodeSpec& node = spec.nodes[j - 1];
    const int op = g[op_index(j)];
    if (op == 0) {
      node.is_identity = true;
    } else {
      const auto dense = static_cast<std::size_t>(op - 1);
      node.units = cfg_.units[dense / n_acts];
      node.act = cfg_.activations[dense % n_acts];
    }
    // Skip slot s connects to node id (j-2-s); slot order is
    // nearest-predecessor first, matching SC_{k-1}, SC_{k-2}, SC_{k-3}.
    const std::size_t slots = skip_slots_for_node(j);
    for (std::size_t s = 0; s < slots; ++s) {
      if (g[op_index(j) + 1 + s] == 1) {
        node.skips.push_back(j - 2 - s);
      }
    }
  }

  const std::size_t out_begin = offsets_.back();
  const std::size_t out_slots = arities_.size() - out_begin;
  for (std::size_t s = 0; s < out_slots; ++s) {
    if (g[out_begin + s] == 1) {
      spec.output_skips.push_back(cfg_.n_variable_nodes - 1 - s);
    }
  }
  return spec;
}

std::vector<double> SearchSpace::one_hot(const Genome& g) const {
  validate(g);
  std::vector<double> out;
  out.reserve(one_hot_dim());
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t v = 0; v < arities_[i]; ++v) {
      out.push_back(v == static_cast<std::size_t>(g[i]) ? 1.0 : 0.0);
    }
  }
  return out;
}

std::size_t SearchSpace::one_hot_dim() const {
  std::size_t n = 0;
  for (std::size_t a : arities_) n += a;
  return n;
}

std::string SearchSpace::key(const Genome& g) {
  std::ostringstream os;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (i) os << ',';
    os << g[i];
  }
  return os.str();
}

std::string SearchSpace::describe(const Genome& g) const {
  // Decode to a spec with placeholder dims for a readable dump.
  const auto spec = to_graph_spec(g, 1, 2);
  std::ostringstream os;
  os << "genome[" << g.size() << "]: " << key(g) << '\n';
  for (std::size_t k = 0; k < spec.nodes.size(); ++k) {
    const auto& node = spec.nodes[k];
    os << "  N" << (k + 1) << ": ";
    if (node.is_identity) {
      os << "identity";
    } else {
      os << "Dense(" << node.units << ", " << nn::to_string(node.act) << ")";
    }
    for (std::size_t s : node.skips) os << " <-N" << s;
    os << '\n';
  }
  os << "  Out:";
  for (std::size_t s : spec.output_skips) os << " <-N" << s;
  os << '\n';
  return os.str();
}

}  // namespace agebo::nas
