#include "exec/live_executor.hpp"

namespace agebo::exec {

LiveExecutor::LiveExecutor(std::size_t n_workers)
    : pool_(n_workers), start_(std::chrono::steady_clock::now()) {}

double LiveExecutor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

std::uint64_t LiveExecutor::submit(EvalFn fn) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    ++in_flight_;
  }
  pool_.enqueue([this, id, fn = std::move(fn)] {
    const double t0 = now();
    EvalOutput out;
    try {
      out = fn();
    } catch (...) {
      out.failed = true;
      out.objective = 0.0;
    }
    const double t1 = now();
    if (out.train_seconds <= 0.0) out.train_seconds = t1 - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_.push_back(Finished{id, out, t1});
      busy_seconds_ += t1 - t0;
      --in_flight_;
    }
    cv_.notify_all();
  });
  return id;
}

std::vector<Finished> LiveExecutor::get_finished(bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  if (block) {
    cv_.wait(lock, [this] { return !finished_.empty() || in_flight_ == 0; });
  }
  std::vector<Finished> out;
  out.swap(finished_);
  return out;
}

std::size_t LiveExecutor::num_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

Utilization LiveExecutor::utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  Utilization u;
  u.busy_worker_seconds = busy_seconds_;
  u.elapsed_seconds = now();
  u.workers = pool_.size();
  return u;
}

}  // namespace agebo::exec
