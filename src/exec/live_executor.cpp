#include "exec/live_executor.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "obs/span.hpp"

namespace agebo::exec {

namespace {

/// Sleep up to `seconds`, returning early (and often) so cancellation and
/// shutdown are observed within a few milliseconds.
void interruptible_sleep(double seconds, const std::atomic<bool>& cancel,
                         const std::atomic<bool>& shutdown) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel.load() || shutdown.load()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

LiveExecutor::LiveExecutor(std::size_t n_workers, RetryPolicy policy,
                           FaultConfig faults)
    : start_(std::chrono::steady_clock::now()),
      policy_(policy),
      injector_(faults),
      shutdown_(std::make_shared<std::atomic<bool>>(false)),
      pool_(n_workers) {
  auto& reg = obs::Registry::global();
  m_submitted_ = reg.counter("exec.jobs_submitted");
  m_attempts_ = reg.counter("exec.attempts");
  m_retries_ = reg.counter("exec.retries");
  m_kills_ = reg.counter("exec.straggler_kills");
  m_failed_ = reg.counter("exec.jobs_failed");
  m_succeeded_ = reg.counter("exec.jobs_succeeded");
  m_busy_ = reg.dcounter("exec.busy_seconds");
  m_in_flight_ = reg.gauge("exec.in_flight");
  busy_baseline_ = m_busy_.total();
}

LiveExecutor::~LiveExecutor() {
  shutdown_->store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job.cancel) job.cancel->store(true);
    }
  }
  // pool_ (the last member) now joins its workers; everything they touch is
  // still alive.
}

double LiveExecutor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

double LiveExecutor::attempt_limit_locked(const JobSpec& spec) const {
  double limit = std::numeric_limits<double>::infinity();
  if (spec.timeout_seconds > 0.0) limit = spec.timeout_seconds;
  if (policy_.straggler_factor > 0.0 &&
      done_durations_.size() >=
          std::max<std::size_t>(1, policy_.straggler_min_samples)) {
    const std::size_t n = done_durations_.size();
    const double median =
        0.5 * (done_durations_[(n - 1) / 2] + done_durations_[n / 2]);
    limit = std::min(limit, policy_.straggler_factor * median);
  }
  return limit;
}

void LiveExecutor::start_attempt_locked(std::uint64_t id, double delay_seconds) {
  Job& job = jobs_.at(id);
  const std::size_t attempt = job.attempt;
  const auto fn = job.fn;
  const auto token = job.cancel;
  const auto shutdown = shutdown_;
  const obs::DCounter tenant_busy = job.tenant_busy;
  pool_.enqueue([this, id, attempt, fn, token, shutdown, tenant_busy,
                 delay_seconds] {
    if (delay_seconds > 0.0) {
      interruptible_sleep(delay_seconds, *token, *shutdown);
    }
    if (shutdown->load() || token->load()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.cancel != token) return;  // stale
      it->second.started = true;
      it->second.start_time = now();
    }
    // Wake get_finished so it can arm this attempt's deadline.
    cv_.notify_all();

    const double t0 = now();
    m_attempts_.inc();
    EvalOutput out;
    {
      OBS_SPAN("exec.attempt", {{"job", std::to_string(id)},
                                {"attempt", std::to_string(attempt)}});
      const FaultKind fault = injector_.draw(id, attempt);
      if (fault == FaultKind::kCrash) {
        out.failed = true;
        out.objective = 0.0;
      } else {
        try {
          out = (*fn)();
        } catch (...) {
          out.failed = true;
          out.objective = 0.0;
        }
        if (fault == FaultKind::kHang) {
          while (!token->load() && !shutdown->load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        } else if (fault == FaultKind::kSlow) {
          interruptible_sleep(
              (injector_.config().slow_factor - 1.0) * (now() - t0), *token,
              *shutdown);
        }
      }
    }
    const double t1 = now();
    m_busy_.add(t1 - t0);
    // Tenant accounting mirrors exec.busy_seconds exactly: killed and
    // retried attempts consumed real worker time, so they count.
    tenant_busy.add(t1 - t0);

    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.cancel != token || token->load()) {
        return;  // attempt was killed while running: result dropped
      }
      Job& j = it->second;
      if (out.train_seconds <= 0.0) out.train_seconds = t1 - t0;
      if (!out.failed) {
        done_durations_.insert(std::lower_bound(done_durations_.begin(),
                                                done_durations_.end(), t1 - t0),
                               t1 - t0);
        finished_.push_back(Finished{id, out, t1, j.attempt, j.spec.tag});
        jobs_.erase(it);
        m_succeeded_.inc();
        m_in_flight_.set(static_cast<double>(jobs_.size()));
      } else if (j.attempt <= j.spec.max_retries) {
        const double backoff = backoff_delay_jittered(policy_, j.attempt, id);
        j.attempt += 1;
        j.started = false;
        j.cancel = std::make_shared<std::atomic<bool>>(false);
        start_attempt_locked(id, backoff);
        m_retries_.inc();
      } else {
        out.objective = 0.0;
        finished_.push_back(Finished{id, out, t1, j.attempt, j.spec.tag});
        jobs_.erase(it);
        m_failed_.inc();
        m_in_flight_.set(static_cast<double>(jobs_.size()));
      }
    }
    cv_.notify_all();
  });
}

std::uint64_t LiveExecutor::submit(EvalFn fn, const JobSpec& spec) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    Job job;
    job.fn = std::make_shared<const EvalFn>(std::move(fn));
    job.spec = spec;
    if (!spec.tenant.empty()) {
      job.tenant_busy =
          obs::Registry::global().dcounter(tenant_busy_metric(spec.tenant));
    }
    job.cancel = std::make_shared<std::atomic<bool>>(false);
    jobs_.emplace(id, std::move(job));
    start_attempt_locked(id, 0.0);
    m_submitted_.inc();
    m_in_flight_.set(static_cast<double>(jobs_.size()));
  }
  return id;
}

void LiveExecutor::reap_expired_locked() {
  const double t = now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, job] : jobs_) {
    if (!job.started || job.cancel->load()) continue;
    const double limit = attempt_limit_locked(job.spec);
    if (t - job.start_time > limit) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    Job& job = jobs_.at(id);
    job.cancel->store(true);  // abandon the running attempt
    m_kills_.inc();
    if (job.attempt <= job.spec.max_retries) {
      const double backoff = backoff_delay_jittered(policy_, job.attempt, id);
      job.attempt += 1;
      job.started = false;
      job.cancel = std::make_shared<std::atomic<bool>>(false);
      start_attempt_locked(id, backoff);
      m_retries_.inc();
    } else {
      EvalOutput out;
      out.failed = true;
      out.timed_out = true;
      out.objective = 0.0;
      out.train_seconds = t - job.start_time;
      finished_.push_back(Finished{id, out, t, job.attempt, job.spec.tag});
      jobs_.erase(id);
      m_failed_.inc();
      m_in_flight_.set(static_cast<double>(jobs_.size()));
    }
  }
}

std::vector<Finished> LiveExecutor::get_finished(bool block) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    reap_expired_locked();
    if (!finished_.empty() || jobs_.empty() || !block) break;

    // Sleep until the earliest deadline of a started attempt (plus a small
    // grace so we wake after it, not at it), or indefinitely when nothing
    // can time out — completions and attempt starts notify cv_.
    double next_deadline = std::numeric_limits<double>::infinity();
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (!job.started || job.cancel->load()) continue;
      const double limit = attempt_limit_locked(job.spec);
      if (limit < std::numeric_limits<double>::infinity()) {
        next_deadline = std::min(next_deadline, job.start_time + limit);
      }
    }
    if (next_deadline < std::numeric_limits<double>::infinity()) {
      cv_.wait_until(lock, start_ + std::chrono::duration_cast<
                                        std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(next_deadline +
                                                             0.002)));
    } else {
      cv_.wait(lock);
    }
  }
  std::vector<Finished> out;
  out.swap(finished_);
  return out;
}

std::size_t LiveExecutor::num_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

Utilization LiveExecutor::utilization() const {
  // One code path with SimulatedExecutor: busy worker time is this
  // executor's delta of the shared `exec.busy_seconds` obs counter.
  std::lock_guard<std::mutex> lock(mu_);
  Utilization u;
  u.busy_worker_seconds = m_busy_.total() - busy_baseline_;
  u.elapsed_seconds = now();
  u.workers = pool_.size();
  return u;
}

}  // namespace agebo::exec
