// Manager-worker execution substrate (the Balsam role in Fig 2).
//
// The search process submits architecture evaluations through a
// non-blocking `submit` and collects completed ones through `get_finished`
// — exactly the submit_evaluation / get_finished_evaluations interface of
// Algorithm 1. Two implementations exist:
//
//  - LiveExecutor: a thread pool of W workers that really runs the
//    evaluation closures; `now()` is wall-clock time.
//  - SimulatedExecutor: an event-driven simulator of a W-worker cluster
//    driven by a virtual clock; each evaluation's *reported* training time
//    becomes its simulated duration. This reproduces the paper's
//    129-node / 3-hour Theta campaigns in milliseconds (DESIGN.md §2).
//
// Search code is written once against Executor and runs on either.
//
// Fault tolerance (DESIGN.md "Fault model and JobSpec API"): at the
// paper's scale (129 KNL nodes for 3 hours) worker crashes, hangs and
// stragglers are routine, so jobs are submitted with a JobSpec carrying a
// per-job timeout and a bounded retry budget, and executors enforce a
// straggler rule (kill-and-resubmit past k× the running median train
// time) from their RetryPolicy. A job is reported through get_finished
// exactly once: either the first successful attempt, or a failed=true
// record once every attempt crashed or was killed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace agebo::exec {

/// What one architecture evaluation produces.
struct EvalOutput {
  /// Validation accuracy (the search objective).
  double objective = 0.0;
  /// Training wall time in seconds. The simulator uses this as the job's
  /// duration; the live executor overwrites it with measured time if the
  /// evaluator left it at zero.
  double train_seconds = 0.0;
  /// True when the evaluation failed (counted as objective 0).
  bool failed = false;
  /// True when the failure was a timeout or straggler kill rather than a
  /// crash (implies failed).
  bool timed_out = false;
  /// True when the evaluation survived one or more replica losses through
  /// elastic reconfiguration (DESIGN.md §16). The result is still a
  /// success — objective/train_seconds are real — but was produced at a
  /// smaller world size than requested.
  bool degraded = false;
  /// Data-parallel world size the evaluation finished with. 0 = unknown
  /// (evaluator predates elastic training or n does not apply); equals the
  /// requested n when no replica was lost.
  std::size_t final_world = 0;
};

using EvalFn = std::function<EvalOutput()>;

/// Per-job submission policy. `width` is the gang size (workers occupied
/// simultaneously); `timeout_seconds` kills an attempt that runs longer
/// (0 = no timeout); `max_retries` bounds how many times a crashed or
/// killed attempt is resubmitted before the job is reported failed; `tag`
/// is an opaque label echoed back in Finished for tracing. `tenant` is the
/// accounting principal of a multiplexed submission (DESIGN.md §14): both
/// executors credit each attempt's consumed worker-seconds to the
/// `exec.tenant.<tenant>.busy_seconds` obs dcounter, which is what the
/// campaign service's per-tenant utilization report reads. Empty = the
/// single-tenant default (no per-tenant counter).
struct JobSpec {
  std::size_t width = 1;
  double timeout_seconds = 0.0;
  std::size_t max_retries = 0;
  std::string tag;
  std::string tenant;
};

struct Finished {
  std::uint64_t id = 0;
  EvalOutput output;
  /// Executor time (seconds since start) at which the job completed.
  double finish_time = 0.0;
  /// Attempts consumed (1 = succeeded first try; >1 means retries ran).
  std::size_t attempts = 1;
  /// Echo of JobSpec::tag.
  std::string tag;
};

/// Executor-wide fault-handling policy (per-job knobs live in JobSpec).
/// Retries of a failed attempt are delayed by an exponential backoff:
/// backoff_base * 2^(attempt-1), capped at backoff_max. The straggler rule
/// kills an attempt once it runs longer than straggler_factor × the
/// running median of successful train times — but only after
/// straggler_min_samples completions, so the first wave (with no median to
/// compare against) is never killed. straggler_factor = 0 disables it.
struct RetryPolicy {
  double backoff_base_seconds = 1.0;
  double backoff_max_seconds = 60.0;
  double straggler_factor = 0.0;
  std::size_t straggler_min_samples = 5;
  /// Fractional backoff jitter in [0, 1]: each retry delay is scaled by a
  /// factor drawn uniformly from [1 - jitter, 1 + jitter]. The draw is a
  /// STATELESS hash of (jitter_seed, job_id, attempt) — never a global RNG
  /// — so a faulted campaign replays byte-identically under --retries and
  /// a resumed checkpoint recomputes the exact same delays. 0 = no jitter
  /// (the historical behavior and the default).
  double backoff_jitter = 0.0;
  std::uint64_t jitter_seed = 0;
};

/// Backoff delay before resubmitting attempt `attempt`+1 after failed
/// attempt `attempt` (1-based).
inline double backoff_delay(const RetryPolicy& policy, std::size_t attempt) {
  double delay = policy.backoff_base_seconds;
  for (std::size_t i = 1; i < attempt; ++i) delay *= 2.0;
  return std::min(delay, policy.backoff_max_seconds);
}

/// Jittered backoff delay for a specific job. Deterministic: the jitter
/// factor is a pure function of (policy.jitter_seed, job_id, attempt), so
/// every replay of the same campaign sees the same delays regardless of
/// thread scheduling. With policy.backoff_jitter == 0 this is exactly
/// backoff_delay(policy, attempt).
inline double backoff_delay_jittered(const RetryPolicy& policy,
                                     std::size_t attempt,
                                     std::uint64_t job_id) {
  const double base = backoff_delay(policy, attempt);
  if (policy.backoff_jitter <= 0.0) return base;
  // splitmix64 finalizer (same mix as FaultInjector's stateless draws).
  auto mix64 = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t h =
      mix64(mix64(policy.jitter_seed ^ 0x6a697474ULL) ^ mix64(job_id) ^
            mix64(static_cast<std::uint64_t>(attempt)));
  const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  const double jitter = std::min(1.0, policy.backoff_jitter);
  return base * (1.0 + jitter * (2.0 * u - 1.0));
}

struct Utilization {
  double busy_worker_seconds = 0.0;
  double elapsed_seconds = 0.0;
  std::size_t workers = 0;
  /// busy / (elapsed * workers); the paper reports ~94% (Sec IV-C).
  double fraction() const {
    const double denom = elapsed_seconds * static_cast<double>(workers);
    return denom > 0.0 ? busy_worker_seconds / denom : 0.0;
  }
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Non-blocking job submission under the given policy; returns the job
  /// id. Gang scheduling (spec.width > 1) occupies `width` workers at once,
  /// for evaluations whose data-parallel training spans multiple nodes —
  /// the paper's multinode future-work item. SimulatedExecutor implements
  /// true gang scheduling; LiveExecutor treats width as 1.
  virtual std::uint64_t submit(EvalFn fn, const JobSpec& spec) = 0;

  /// Completed jobs since the last call. When `block` is true and jobs are
  /// in flight, waits until at least one completes (in the simulator this
  /// advances the virtual clock). Returns empty when nothing is in flight.
  /// Timeout and straggler enforcement happen inside this call (the
  /// manager loop of Algorithm 1 always sits here), so a hung evaluation
  /// with a timeout can no longer stall the search forever.
  virtual std::vector<Finished> get_finished(bool block = true) = 0;

  /// Seconds since executor start: wall time (live) or virtual time (sim).
  virtual double now() const = 0;

  virtual std::size_t num_workers() const = 0;
  virtual std::size_t num_in_flight() const = 0;
  virtual Utilization utilization() const = 0;

  /// Durable snapshot of the executor's queued/in-flight state for the
  /// campaign service's checkpoint/resume path (DESIGN.md §14). Returns
  /// false when the implementation cannot snapshot — LiveExecutor's
  /// in-flight work lives on real threads and is lost with the process, so
  /// resume falls back to resubmitting the campaigns' outstanding tickets.
  /// SimulatedExecutor serializes its virtual clock, worker free times, and
  /// resolved completion events, making a resumed simulated campaign
  /// bit-identical to an uninterrupted one.
  virtual bool save_state(std::ostream& os) const {
    (void)os;
    return false;
  }
  /// Restore a snapshot written by the same implementation with the same
  /// worker count; returns false when snapshotting is unsupported. Throws
  /// std::runtime_error on malformed or mismatched input.
  virtual bool load_state(std::istream& is) {
    (void)is;
    return false;
  }
};

/// Metric name credited with a tenant's consumed worker-seconds.
inline std::string tenant_busy_metric(const std::string& tenant) {
  return "exec.tenant." + tenant + ".busy_seconds";
}

}  // namespace agebo::exec
