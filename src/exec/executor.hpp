// Manager-worker execution substrate (the Balsam role in Fig 2).
//
// The search process submits architecture evaluations through a
// non-blocking `submit` and collects completed ones through `get_finished`
// — exactly the submit_evaluation / get_finished_evaluations interface of
// Algorithm 1. Two implementations exist:
//
//  - LiveExecutor: a thread pool of W workers that really runs the
//    evaluation closures; `now()` is wall-clock time.
//  - SimulatedExecutor: an event-driven simulator of a W-worker cluster
//    driven by a virtual clock; each evaluation's *reported* training time
//    becomes its simulated duration. This reproduces the paper's
//    129-node / 3-hour Theta campaigns in milliseconds (DESIGN.md §2).
//
// Search code is written once against Executor and runs on either.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace agebo::exec {

/// What one architecture evaluation produces.
struct EvalOutput {
  /// Validation accuracy (the search objective).
  double objective = 0.0;
  /// Training wall time in seconds. The simulator uses this as the job's
  /// duration; the live executor overwrites it with measured time if the
  /// evaluator left it at zero.
  double train_seconds = 0.0;
  /// True when the evaluation failed (counted as objective 0).
  bool failed = false;
};

using EvalFn = std::function<EvalOutput()>;

struct Finished {
  std::uint64_t id = 0;
  EvalOutput output;
  /// Executor time (seconds since start) at which the job completed.
  double finish_time = 0.0;
};

struct Utilization {
  double busy_worker_seconds = 0.0;
  double elapsed_seconds = 0.0;
  std::size_t workers = 0;
  /// busy / (elapsed * workers); the paper reports ~94% (Sec IV-C).
  double fraction() const {
    const double denom = elapsed_seconds * static_cast<double>(workers);
    return denom > 0.0 ? busy_worker_seconds / denom : 0.0;
  }
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Non-blocking job submission; returns the job id.
  virtual std::uint64_t submit(EvalFn fn) = 0;

  /// Submission occupying `width` workers at once (gang scheduling), for
  /// evaluations whose data-parallel training spans multiple nodes — the
  /// paper's multinode future-work item. The default treats width as 1;
  /// SimulatedExecutor implements true gang scheduling.
  virtual std::uint64_t submit(EvalFn fn, std::size_t width) {
    (void)width;
    return submit(std::move(fn));
  }

  /// Completed jobs since the last call. When `block` is true and jobs are
  /// in flight, waits until at least one completes (in the simulator this
  /// advances the virtual clock). Returns empty when nothing is in flight.
  virtual std::vector<Finished> get_finished(bool block = true) = 0;

  /// Seconds since executor start: wall time (live) or virtual time (sim).
  virtual double now() const = 0;

  virtual std::size_t num_workers() const = 0;
  virtual std::size_t num_in_flight() const = 0;
  virtual Utilization utilization() const = 0;
};

}  // namespace agebo::exec
