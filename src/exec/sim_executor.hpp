// Event-driven simulation of a W-worker cluster under a virtual clock.
//
// submit() runs the evaluation closure immediately (it is cheap — surrogate
// evaluators compute an analytic response) and schedules its *completion*
// at now + output.train_seconds on the earliest-free worker, reproducing
// the queueing dynamics of the paper's 128-worker Theta campaign without
// burning node-hours. get_finished() advances the clock to the next
// completion, so a 3-hour search runs in milliseconds while producing the
// same algorithmic trajectory an asynchronous manager would observe.
//
// Fault tolerance: each submission resolves its whole attempt chain
// eagerly. Per attempt, the FaultInjector may crash it (fails after half
// its duration), hang it (runs ~forever until a timeout or the straggler
// rule kills it), or slow it (duration × slow_factor). An attempt that
// exceeds min(JobSpec::timeout_seconds, straggler limit) is killed at that
// deadline; killed/crashed attempts are resubmitted after exponential
// backoff until JobSpec::max_retries is exhausted, at which point one
// failed=true completion is reported. Every attempt occupies its gang of
// workers for the time it consumed, so retries and kills show up in
// utilization and the trace export. Causality note: the straggler limit
// uses the running median of successful attempt durations in *submission*
// order (the eager-resolution equivalent of the median a live manager
// would see); docs/simulation.md discusses the approximation.
#pragma once

#include <iosfwd>
#include <map>
#include <queue>

#include "exec/executor.hpp"
#include "exec/fault_injector.hpp"
#include "obs/registry.hpp"

namespace agebo::exec {

class SimulatedExecutor final : public Executor {
 public:
  /// `job_overhead_seconds` models the per-evaluation launch cost (Balsam
  /// scheduling + mpirun + model build on Theta) during which the worker is
  /// occupied but not training; it is what keeps measured utilization below
  /// 100% (the paper reports ~94%). `policy` and `faults` configure the
  /// fault-tolerance layer; the defaults disable both.
  explicit SimulatedExecutor(std::size_t n_workers,
                             double job_overhead_seconds = 0.0,
                             RetryPolicy policy = {},
                             FaultConfig faults = {});

  std::uint64_t submit(EvalFn fn, const JobSpec& spec) override;
  std::vector<Finished> get_finished(bool block = true) override;
  double now() const override { return clock_; }
  std::size_t num_workers() const override { return worker_free_at_.size(); }
  std::size_t num_in_flight() const override { return events_.size(); }
  Utilization utilization() const override;

  /// Export the schedule as CSV (job_id, worker, start, finish) for Gantt
  /// plots of the campaign.
  void write_trace_csv(std::ostream& os) const;

  /// Durable snapshot (DESIGN.md §14): virtual clock, job-id counter,
  /// per-worker free times, straggler medians, un-credited busy intervals,
  /// and every resolved-but-undelivered completion event. Fault draws are a
  /// stateless hash of (seed, job, attempt), so the restored id counter is
  /// all a resumed run needs to draw the identical fault sequence. The
  /// Gantt intervals (write_trace_csv) are not persisted — a resumed trace
  /// starts at the resume point.
  bool save_state(std::ostream& os) const override;
  bool load_state(std::istream& is) override;

 private:
  struct Event {
    double finish_time;
    std::uint64_t id;
    EvalOutput output;
    std::size_t attempts;
    std::string tag;
    bool operator>(const Event& o) const {
      // Tie-break on id for determinism.
      if (finish_time != o.finish_time) return finish_time > o.finish_time;
      return id > o.id;
    }
  };

  /// Effective kill deadline (relative seconds) for one attempt, or +inf.
  double attempt_limit(const JobSpec& spec) const;
  /// Claim the `width` earliest-free workers into gang_scratch_. width==1
  /// (the paper's single-node campaigns, and every worker of a 10k-worker
  /// simulation) is a plain argmin scan — no index vector, no partial
  /// sort; wider gangs partial-sort a reused scratch vector. Both pick
  /// ties by lowest worker index.
  void claim_gang(std::size_t width);
  /// Record one successful attempt duration for the straggler median.
  void record_duration(double seconds);
  /// Credit `exec.busy_seconds` with worker-busy time that elapsed while
  /// the virtual clock moved (old_clock, clock_] — the obs-counter
  /// replacement for the old query-time interval clipping, so simulated
  /// and live runs report utilization through one code path.
  void advance_busy_accounting(double old_clock);

  double clock_ = 0.0;
  double job_overhead_ = 0.0;
  RetryPolicy policy_;
  FaultInjector injector_;
  std::uint64_t next_id_ = 1;
  std::vector<double> worker_free_at_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  /// Successful attempt durations, kept sorted for the running median.
  std::vector<double> done_durations_;
  /// One occupied worker-interval of a scheduled job; utilization clips
  /// each interval to [0, clock] so jobs scheduled past the horizon don't
  /// overcount, and the trace export reconstructs the Gantt chart.
  struct BusyInterval {
    std::uint64_t job_id;
    std::size_t worker;
    double start;
    double finish;
  };
  std::vector<BusyInterval> busy_intervals_;
  /// Worker-intervals not yet fully credited to `exec.busy_seconds`
  /// (consumed by advance_busy_accounting as the clock passes them).
  struct PendingBusy {
    double start;
    double finish;
  };
  std::vector<PendingBusy> pending_busy_;
  /// Workers claimed by the current attempt (claim_gang scratch, reused
  /// across submits so the hot path does not allocate).
  std::vector<std::size_t> gang_scratch_;
  std::vector<std::size_t> gang_order_scratch_;

  // Shared executor metrics (exec.* names are common to the simulator and
  // LiveExecutor). Counters are process-global and monotonic; utilization
  // reports the busy-seconds delta since this executor's construction.
  obs::Counter m_submitted_;
  obs::Counter m_attempts_;
  obs::Counter m_retries_;
  obs::Counter m_kills_;
  obs::Counter m_failed_;
  obs::Counter m_succeeded_;
  obs::DCounter m_busy_;
  double busy_baseline_ = 0.0;
  /// Per-tenant busy-seconds dcounters, created on first submission with a
  /// JobSpec::tenant (handles cached; the registry owns the storage).
  std::map<std::string, obs::DCounter> tenant_busy_;
  obs::DCounter& tenant_counter(const std::string& tenant);
};

}  // namespace agebo::exec
