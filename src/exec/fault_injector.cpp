#include "exec/fault_injector.hpp"

#include <stdexcept>

namespace agebo::exec {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg) {
  if (cfg.crash_prob < 0.0 || cfg.hang_prob < 0.0 || cfg.slow_prob < 0.0) {
    throw std::invalid_argument("FaultInjector: negative probability");
  }
  if (cfg.crash_prob + cfg.hang_prob + cfg.slow_prob > 1.0) {
    throw std::invalid_argument("FaultInjector: probabilities sum past 1");
  }
  if (cfg.slow_factor < 1.0) {
    throw std::invalid_argument("FaultInjector: slow_factor < 1");
  }
}

FaultKind FaultInjector::band(double u) const {
  if (u < cfg_.crash_prob) return FaultKind::kCrash;
  if (u < cfg_.crash_prob + cfg_.hang_prob) return FaultKind::kHang;
  if (u < cfg_.crash_prob + cfg_.hang_prob + cfg_.slow_prob) {
    return FaultKind::kSlow;
  }
  return FaultKind::kNone;
}

FaultKind FaultInjector::draw(std::uint64_t job_id, std::size_t attempt) const {
  if (!enabled()) return FaultKind::kNone;
  const std::uint64_t h =
      mix64(mix64(cfg_.seed ^ 0x66617565ULL) ^ mix64(job_id) ^
            mix64(static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return band(u);
}

FaultKind FaultInjector::draw_replica(std::uint64_t job_id, std::size_t replica,
                                      std::uint64_t step) const {
  if (!enabled()) return FaultKind::kNone;
  // "repl" domain separator keeps replica draws independent of the
  // job-level draw() stream for the same (seed, job_id).
  const std::uint64_t h =
      mix64(mix64(cfg_.seed ^ 0x7265706cULL) ^ mix64(job_id) ^
            mix64(static_cast<std::uint64_t>(replica) + 1) ^
            mix64(step * 0x9e3779b97f4a7c15ULL));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return band(u);
}

}  // namespace agebo::exec
