// Fixed-size thread pool with a shared task queue. Tasks are opaque
// void() closures; completion reporting is the caller's concern
// (LiveExecutor wraps tasks to push results into its finished queue).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agebo::exec {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void enqueue(std::function<void()> task);
  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace agebo::exec
