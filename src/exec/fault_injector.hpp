// Seeded fault injection for the execution layer.
//
// Campaign-scale robustness (the paper's 129-node / 3-hour runs) cannot be
// tested against real node failures, so both executors accept a
// FaultInjector that perturbs evaluation attempts with configurable
// crash / hang / slowdown probabilities:
//
//  - crash:  the attempt fails part-way through (worker died, OOM, MPI
//            abort); it consumes time but produces no result.
//  - hang:   the attempt never completes on its own (deadlocked allreduce,
//            wedged filesystem); only a timeout or the straggler rule can
//            reclaim the worker.
//  - slow:   the attempt runs slow_factor × its normal duration (shared
//            node interference) but still succeeds — the straggler case.
//
// Draws are STATELESS: the fault for (job, attempt) is a pure hash of
// (seed, job_id, attempt), so the injected fault sequence is identical no
// matter which order worker threads ask — the determinism the fault-path
// tests rely on, and the reason a retried attempt can draw a different
// fault than the attempt it replaces.
#pragma once

#include <cstdint>

namespace agebo::exec {

struct FaultConfig {
  double crash_prob = 0.0;
  double hang_prob = 0.0;
  double slow_prob = 0.0;
  /// Duration multiplier for slow attempts (>= 1).
  double slow_factor = 4.0;
  std::uint64_t seed = 0;
};

enum class FaultKind { kNone, kCrash, kHang, kSlow };

class FaultInjector {
 public:
  /// Default-constructed injector never injects anything.
  FaultInjector() = default;
  /// Throws std::invalid_argument when probabilities are negative, sum
  /// past 1, or slow_factor < 1.
  explicit FaultInjector(FaultConfig cfg);

  /// Fault drawn for attempt `attempt` (1-based) of job `job_id`.
  FaultKind draw(std::uint64_t job_id, std::size_t attempt) const;

  /// Replica-scoped fault drawn at allreduce entry of training step `step`
  /// for replica `replica` of job `job_id` (elastic data-parallel training,
  /// DESIGN.md §16). Stateless like draw(): a pure hash of
  /// (seed, job_id, replica, step) in a distinct domain, so the injected
  /// replica-fault sequence is independent of thread scheduling and of the
  /// job-level draws, and a resumed campaign replays the same faults.
  FaultKind draw_replica(std::uint64_t job_id, std::size_t replica,
                         std::uint64_t step) const;

  bool enabled() const {
    return cfg_.crash_prob + cfg_.hang_prob + cfg_.slow_prob > 0.0;
  }
  const FaultConfig& config() const { return cfg_; }

 private:
  FaultKind band(double u) const;

  FaultConfig cfg_;
};

}  // namespace agebo::exec
