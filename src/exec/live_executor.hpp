// Executor backed by a real thread pool; evaluations actually run. Used by
// examples and integration tests to drive the full training path.
//
// Fault tolerance: timeouts and the straggler rule are enforced inside
// get_finished (the manager loop of Algorithm 1 always sits there), which
// wakes at the earliest in-flight deadline. Threads cannot be killed, so a
// timed-out attempt is *abandoned*: its cancel token is set, its eventual
// result is dropped, and the job is either resubmitted (bounded by
// JobSpec::max_retries, after exponential backoff) or reported failed.
// Injected hangs and slowdowns poll the cancel token, so the worker slot
// comes back promptly; a real runaway closure keeps its pool thread busy
// until it returns — exactly the straggler behaviour the policy exists to
// bound.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "exec/executor.hpp"
#include "exec/fault_injector.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"

namespace agebo::exec {

class LiveExecutor final : public Executor {
 public:
  explicit LiveExecutor(std::size_t n_workers, RetryPolicy policy = {},
                        FaultConfig faults = {});
  ~LiveExecutor() override;

  /// Live workers are pool threads, so gang width is treated as 1 (one
  /// thread per evaluation regardless of spec.width).
  std::uint64_t submit(EvalFn fn, const JobSpec& spec) override;
  std::vector<Finished> get_finished(bool block = true) override;
  double now() const override;
  std::size_t num_workers() const override { return pool_.size(); }
  std::size_t num_in_flight() const override;
  Utilization utilization() const override;

 private:
  struct Job {
    std::shared_ptr<const EvalFn> fn;
    JobSpec spec;
    /// Per-tenant busy-seconds dcounter (null handle when spec.tenant is
    /// empty — add() on a null handle is a no-op). Registered at submit
    /// time so attempt closures never take the registry lock.
    obs::DCounter tenant_busy;
    std::size_t attempt = 1;
    bool started = false;
    double start_time = 0.0;
    /// Token of the *current* attempt; set true to abandon it. A fresh
    /// token per attempt makes results from killed attempts identifiable.
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  /// Enqueue the current attempt of `id` after `delay_seconds` of backoff.
  /// Caller holds mu_.
  void start_attempt_locked(std::uint64_t id, double delay_seconds);
  /// Kill attempts past their deadline; retry or report them. Caller holds
  /// mu_.
  void reap_expired_locked();
  /// Kill deadline (relative seconds) for one attempt, or +inf. Caller
  /// holds mu_.
  double attempt_limit_locked(const JobSpec& spec) const;

  std::chrono::steady_clock::time_point start_;
  RetryPolicy policy_;
  FaultInjector injector_;
  /// Shared with attempt closures so injected hangs exit at destruction.
  std::shared_ptr<std::atomic<bool>> shutdown_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Finished> finished_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Job> jobs_;
  std::vector<double> done_durations_;  ///< sorted successful durations

  // Shared executor metrics (same exec.* names as SimulatedExecutor, so
  // live and simulated runs report through one code path). Busy time is
  // the delta of the global `exec.busy_seconds` counter since
  // construction.
  obs::Counter m_submitted_;
  obs::Counter m_attempts_;
  obs::Counter m_retries_;
  obs::Counter m_kills_;
  obs::Counter m_failed_;
  obs::Counter m_succeeded_;
  obs::DCounter m_busy_;
  obs::Gauge m_in_flight_;
  double busy_baseline_ = 0.0;

  /// Last member on purpose: its destructor joins the workers while every
  /// other field (mutex, maps, tokens) is still alive. (Declared first, it
  /// would be destroyed last and in-flight closures could touch destroyed
  /// members.)
  ThreadPool pool_;
};

}  // namespace agebo::exec
