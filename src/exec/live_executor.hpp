// Executor backed by a real thread pool; evaluations actually run. Used by
// examples and integration tests to drive the full training path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"

namespace agebo::exec {

class LiveExecutor final : public Executor {
 public:
  explicit LiveExecutor(std::size_t n_workers);

  std::uint64_t submit(EvalFn fn) override;
  std::vector<Finished> get_finished(bool block = true) override;
  double now() const override;
  std::size_t num_workers() const override { return pool_.size(); }
  std::size_t num_in_flight() const override;
  Utilization utilization() const override;

 private:
  ThreadPool pool_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Finished> finished_;
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace agebo::exec
