#include "exec/thread_pool.hpp"

#include <stdexcept>
#include <string>

#include "obs/span.hpp"

namespace agebo::exec {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) throw std::invalid_argument("ThreadPool: zero threads");
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] {
      // Name the trace lane so spans emitted from this worker land on a
      // stable, sortable track in the Chrome-trace export.
      std::string digits = std::to_string(i);
      while (digits.size() < 3) digits.insert(digits.begin(), '0');
      obs::set_thread_lane("exec.worker." + digits);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::logic_error("ThreadPool: enqueue after stop");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task that lets an exception escape would std::terminate the whole
    // process (worker threads have no handler above this frame). Failure
    // reporting is the caller's concern — LiveExecutor already converts
    // evaluation exceptions into failed=true results — so anything arriving
    // here is a programming error in the wrapper; swallow it rather than
    // take down the campaign.
    try {
      task();
    } catch (...) {
    }
  }
}

}  // namespace agebo::exec
