#include "exec/sim_executor.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace agebo::exec {

SimulatedExecutor::SimulatedExecutor(std::size_t n_workers,
                                     double job_overhead_seconds)
    : job_overhead_(job_overhead_seconds), worker_free_at_(n_workers, 0.0) {
  if (n_workers == 0) throw std::invalid_argument("SimulatedExecutor: zero workers");
  if (job_overhead_seconds < 0.0) {
    throw std::invalid_argument("SimulatedExecutor: negative overhead");
  }
}

std::uint64_t SimulatedExecutor::submit(EvalFn fn) {
  return submit(std::move(fn), 1);
}

std::uint64_t SimulatedExecutor::submit(EvalFn fn, std::size_t width) {
  if (width == 0 || width > worker_free_at_.size()) {
    throw std::invalid_argument("SimulatedExecutor: bad gang width");
  }
  const std::uint64_t id = next_id_++;

  EvalOutput out;
  try {
    out = fn();
  } catch (...) {
    out.failed = true;
    out.objective = 0.0;
    out.train_seconds = 1.0;
  }
  if (out.train_seconds <= 0.0) out.train_seconds = 1e-3;

  // Gang scheduling: claim the `width` earliest-free workers; the job
  // starts when the latest of them frees up (and not before now), and pays
  // the launch overhead (idle from the utilization viewpoint) first.
  std::vector<std::size_t> order(worker_free_at_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(width),
                    order.end(), [this](std::size_t a, std::size_t b) {
                      return worker_free_at_[a] < worker_free_at_[b];
                    });
  double gang_free = clock_;
  for (std::size_t i = 0; i < width; ++i) {
    gang_free = std::max(gang_free, worker_free_at_[order[i]]);
  }
  const double start = gang_free + job_overhead_;
  const double finish = start + out.train_seconds;
  for (std::size_t i = 0; i < width; ++i) {
    worker_free_at_[order[i]] = finish;
    busy_intervals_.push_back(BusyInterval{id, order[i], start, finish});
  }

  events_.push(Event{finish, id, out});
  return id;
}

std::vector<Finished> SimulatedExecutor::get_finished(bool block) {
  std::vector<Finished> out;
  if (events_.empty()) return out;

  if (!block && events_.top().finish_time > clock_) return out;

  // Advance to the next completion and drain everything finishing then.
  const double t = std::max(clock_, events_.top().finish_time);
  clock_ = t;
  while (!events_.empty() && events_.top().finish_time <= clock_) {
    const Event& e = events_.top();
    out.push_back(Finished{e.id, e.output, e.finish_time});
    events_.pop();
  }
  return out;
}

Utilization SimulatedExecutor::utilization() const {
  Utilization u;
  for (const auto& interval : busy_intervals_) {
    u.busy_worker_seconds +=
        std::max(0.0, std::min(interval.finish, clock_) - interval.start);
  }
  u.elapsed_seconds = clock_;
  u.workers = worker_free_at_.size();
  return u;
}

void SimulatedExecutor::write_trace_csv(std::ostream& os) const {
  os << "job_id,worker,start,finish\n";
  for (const auto& interval : busy_intervals_) {
    os << interval.job_id << ',' << interval.worker << ',' << interval.start
       << ',' << interval.finish << '\n';
  }
}

}  // namespace agebo::exec
