#include "exec/sim_executor.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/span.hpp"

namespace agebo::exec {

namespace {

// A hang runs this many times its nominal duration: effectively forever
// unless a timeout or the straggler rule reclaims the workers (an unkilled
// hang pushes its completion far past any campaign budget, which is the
// simulated analogue of stalling the machine).
constexpr double kHangFactor = 1e9;

/// Trace lane for a simulated worker; zero-padded so lanes sort by index.
std::string worker_lane(std::size_t worker) {
  std::string digits = std::to_string(worker);
  while (digits.size() < 3) digits.insert(digits.begin(), '0');
  return "sim.worker." + digits;
}

const char* attempt_status(FaultKind fault, bool killed, bool eval_failed) {
  if (killed) return fault == FaultKind::kHang ? "hang-killed" : "timeout";
  if (fault == FaultKind::kCrash) return "crash";
  if (eval_failed) return "error";
  if (fault == FaultKind::kSlow) return "slow";
  return "ok";
}

}  // namespace

SimulatedExecutor::SimulatedExecutor(std::size_t n_workers,
                                     double job_overhead_seconds,
                                     RetryPolicy policy, FaultConfig faults)
    : job_overhead_(job_overhead_seconds),
      policy_(policy),
      injector_(faults),
      worker_free_at_(n_workers, 0.0) {
  if (n_workers == 0) throw std::invalid_argument("SimulatedExecutor: zero workers");
  if (job_overhead_seconds < 0.0) {
    throw std::invalid_argument("SimulatedExecutor: negative overhead");
  }
  auto& reg = obs::Registry::global();
  m_submitted_ = reg.counter("exec.jobs_submitted");
  m_attempts_ = reg.counter("exec.attempts");
  m_retries_ = reg.counter("exec.retries");
  m_kills_ = reg.counter("exec.straggler_kills");
  m_failed_ = reg.counter("exec.jobs_failed");
  m_succeeded_ = reg.counter("exec.jobs_succeeded");
  m_busy_ = reg.dcounter("exec.busy_seconds");
  busy_baseline_ = m_busy_.total();
}

double SimulatedExecutor::attempt_limit(const JobSpec& spec) const {
  double limit = std::numeric_limits<double>::infinity();
  if (spec.timeout_seconds > 0.0) limit = spec.timeout_seconds;
  if (policy_.straggler_factor > 0.0 &&
      done_durations_.size() >= std::max<std::size_t>(1, policy_.straggler_min_samples)) {
    const std::size_t n = done_durations_.size();
    const double median =
        0.5 * (done_durations_[(n - 1) / 2] + done_durations_[n / 2]);
    limit = std::min(limit, policy_.straggler_factor * median);
  }
  return limit;
}

obs::DCounter& SimulatedExecutor::tenant_counter(const std::string& tenant) {
  auto it = tenant_busy_.find(tenant);
  if (it == tenant_busy_.end()) {
    it = tenant_busy_
             .emplace(tenant, obs::Registry::global().dcounter(
                                  tenant_busy_metric(tenant)))
             .first;
  }
  return it->second;
}

void SimulatedExecutor::record_duration(double seconds) {
  done_durations_.insert(
      std::lower_bound(done_durations_.begin(), done_durations_.end(), seconds),
      seconds);
}

void SimulatedExecutor::claim_gang(std::size_t width) {
  gang_scratch_.clear();
  if (width == 1) {
    // Hot path for single-worker jobs: one argmin scan over the free
    // times instead of materializing and partial-sorting an index vector.
    // Strict < keeps the first minimal index, the same worker the sort
    // picked, so trajectories are unchanged — at 10k simulated workers
    // this is what makes per-submit cost flat in allocations.
    std::size_t best = 0;
    for (std::size_t i = 1; i < worker_free_at_.size(); ++i) {
      if (worker_free_at_[i] < worker_free_at_[best]) best = i;
    }
    gang_scratch_.push_back(best);
    return;
  }
  gang_order_scratch_.resize(worker_free_at_.size());
  for (std::size_t i = 0; i < gang_order_scratch_.size(); ++i) {
    gang_order_scratch_[i] = i;
  }
  std::partial_sort(gang_order_scratch_.begin(),
                    gang_order_scratch_.begin() +
                        static_cast<std::ptrdiff_t>(width),
                    gang_order_scratch_.end(),
                    [this](std::size_t a, std::size_t b) {
                      return worker_free_at_[a] < worker_free_at_[b];
                    });
  gang_scratch_.assign(gang_order_scratch_.begin(),
                       gang_order_scratch_.begin() +
                           static_cast<std::ptrdiff_t>(width));
}

std::uint64_t SimulatedExecutor::submit(EvalFn fn, const JobSpec& spec) {
  if (spec.width == 0 || spec.width > worker_free_at_.size()) {
    throw std::invalid_argument("SimulatedExecutor: bad gang width");
  }
  const std::uint64_t id = next_id_++;
  m_submitted_.inc();

  EvalOutput base;
  try {
    base = fn();
  } catch (...) {
    base.failed = true;
    base.objective = 0.0;
    base.train_seconds = 1.0;
  }
  if (base.train_seconds <= 0.0) base.train_seconds = 1e-3;

  // Resolve the attempt chain eagerly: each attempt claims its gang, pays
  // the launch overhead, and either completes, crashes, or is killed at
  // its deadline; failed attempts retry after exponential backoff until
  // the budget is exhausted.
  double t_ready = clock_;
  for (std::size_t attempt = 1;; ++attempt) {
    const FaultKind fault = injector_.draw(id, attempt);
    double duration = base.train_seconds;
    if (fault == FaultKind::kCrash) duration *= 0.5;
    if (fault == FaultKind::kHang) duration *= kHangFactor;
    if (fault == FaultKind::kSlow) duration *= injector_.config().slow_factor;

    const double limit = attempt_limit(spec);
    const bool killed = duration > limit;
    const double consumed = std::min(duration, limit);
    const bool attempt_failed =
        base.failed || fault == FaultKind::kCrash || fault == FaultKind::kHang ||
        killed;

    // Gang scheduling: claim the `width` earliest-free workers; the attempt
    // starts when the latest of them frees up (and not before t_ready), and
    // pays the launch overhead (idle from the utilization viewpoint) first.
    claim_gang(spec.width);
    const std::vector<std::size_t>& order = gang_scratch_;
    double gang_free = t_ready;
    for (std::size_t i = 0; i < spec.width; ++i) {
      gang_free = std::max(gang_free, worker_free_at_[order[i]]);
    }
    const double start = gang_free + job_overhead_;
    const double finish = start + consumed;
    m_attempts_.inc();
    if (killed) m_kills_.inc();
    if (!spec.tenant.empty()) {
      // Per-tenant accounting: every attempt's gang occupancy is the
      // tenant's consumption, retries and kills included — quota
      // enforcement should see what a job *cost*, not what it produced.
      tenant_counter(spec.tenant)
          .add(consumed * static_cast<double>(spec.width));
    }
    const char* status = attempt_status(fault, killed, base.failed);
    for (std::size_t i = 0; i < spec.width; ++i) {
      worker_free_at_[order[i]] = finish;
      busy_intervals_.push_back(BusyInterval{id, order[i], start, finish});
      pending_busy_.push_back(PendingBusy{start, finish});
      // Virtual-time trace: each gang worker's occupancy becomes one span
      // on its lane (plus the launch overhead as its own phase).
      const std::string lane = worker_lane(order[i]);
      if (job_overhead_ > 0.0) {
        obs::record_span("exec.launch", lane, gang_free, job_overhead_);
      }
      obs::record_span(spec.tag.empty() ? "exec.attempt" : spec.tag, lane,
                       start, consumed,
                       {{"job", std::to_string(id)},
                        {"attempt", std::to_string(attempt)},
                        {"status", status}});
    }

    if (!attempt_failed) {
      EvalOutput out = base;
      out.train_seconds = consumed;
      record_duration(consumed);
      events_.push(Event{finish, id, out, attempt, spec.tag});
      m_succeeded_.inc();
      break;
    }
    if (attempt <= spec.max_retries) {
      t_ready = finish + backoff_delay_jittered(policy_, attempt, id);
      m_retries_.inc();
      continue;
    }
    // Retries exhausted: report one failed completion.
    EvalOutput out;
    out.failed = true;
    out.timed_out = killed;
    out.objective = 0.0;
    out.train_seconds = consumed;
    events_.push(Event{finish, id, out, attempt, spec.tag});
    m_failed_.inc();
    break;
  }
  return id;
}

void SimulatedExecutor::advance_busy_accounting(double old_clock) {
  double credited = 0.0;
  std::size_t i = 0;
  while (i < pending_busy_.size()) {
    const PendingBusy& p = pending_busy_[i];
    const double lo = std::max(p.start, old_clock);
    const double hi = std::min(p.finish, clock_);
    if (hi > lo) credited += hi - lo;
    if (p.finish <= clock_) {
      // Fully elapsed: retire it so the pending list stays proportional to
      // the in-flight gang width, not the whole campaign.
      pending_busy_[i] = pending_busy_.back();
      pending_busy_.pop_back();
    } else {
      ++i;
    }
  }
  if (credited > 0.0) m_busy_.add(credited);
}

std::vector<Finished> SimulatedExecutor::get_finished(bool block) {
  std::vector<Finished> out;
  if (events_.empty()) return out;

  if (!block && events_.top().finish_time > clock_) return out;

  // Advance to the next completion and drain everything finishing then.
  const double old_clock = clock_;
  const double t = std::max(clock_, events_.top().finish_time);
  clock_ = t;
  advance_busy_accounting(old_clock);
  while (!events_.empty() && events_.top().finish_time <= clock_) {
    const Event& e = events_.top();
    out.push_back(Finished{e.id, e.output, e.finish_time, e.attempts, e.tag});
    events_.pop();
  }
  return out;
}

Utilization SimulatedExecutor::utilization() const {
  // One code path with LiveExecutor: busy worker time is whatever this
  // executor has credited to the shared `exec.busy_seconds` obs counter
  // since construction (advance_busy_accounting clips intervals to the
  // clock exactly like the old query-time accounting did).
  Utilization u;
  u.busy_worker_seconds = m_busy_.total() - busy_baseline_;
  u.elapsed_seconds = clock_;
  u.workers = worker_free_at_.size();
  return u;
}

void SimulatedExecutor::write_trace_csv(std::ostream& os) const {
  os << "job_id,worker,start,finish\n";
  for (const auto& interval : busy_intervals_) {
    os << interval.job_id << ',' << interval.worker << ',' << interval.start
       << ',' << interval.finish << '\n';
  }
}

namespace {

// v2 adds the elastic degraded/final_world output fields to event lines;
// v1 snapshots (pre-elastic releases) still load with those defaulted.
constexpr const char* kSimStateHeader = "sim-executor v2";
constexpr const char* kSimStateHeaderV1 = "sim-executor v1";

// Tags never contain whitespace (the service uses dotted names, SHA uses
// "sha-rung-N"); an empty tag is written as "-" so every event line has a
// fixed token count.
std::string encode_tag(const std::string& tag) { return tag.empty() ? "-" : tag; }
std::string decode_tag(const std::string& tag) { return tag == "-" ? "" : tag; }

[[noreturn]] void bad_state(const std::string& what) {
  throw std::runtime_error("SimulatedExecutor::load_state: " + what);
}

}  // namespace

bool SimulatedExecutor::save_state(std::ostream& os) const {
  os.precision(17);
  os << kSimStateHeader << '\n';
  os << "clock " << clock_ << '\n';
  os << "next-id " << next_id_ << '\n';
  os << "workers " << worker_free_at_.size();
  for (const double t : worker_free_at_) os << ' ' << t;
  os << '\n';
  os << "durations " << done_durations_.size();
  for (const double d : done_durations_) os << ' ' << d;
  os << '\n';
  os << "pending-busy " << pending_busy_.size() << '\n';
  for (const PendingBusy& p : pending_busy_) {
    os << "busy " << p.start << ' ' << p.finish << '\n';
  }
  // Drain a copy of the priority queue; order is irrelevant (re-heapified
  // on load) but a sorted dump keeps the file deterministic.
  auto events = events_;
  os << "events " << events.size() << '\n';
  while (!events.empty()) {
    const Event& e = events.top();
    os << "event " << e.finish_time << ' ' << e.id << ' ' << e.attempts << ' '
       << e.output.objective << ' ' << e.output.train_seconds << ' '
       << (e.output.failed ? 1 : 0) << ' ' << (e.output.timed_out ? 1 : 0)
       << ' ' << (e.output.degraded ? 1 : 0) << ' ' << e.output.final_world
       << ' ' << encode_tag(e.tag) << '\n';
    events.pop();
  }
  return true;
}

bool SimulatedExecutor::load_state(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      (line != kSimStateHeader && line != kSimStateHeaderV1)) {
    bad_state("bad header");
  }
  const bool v1 = line == kSimStateHeaderV1;
  std::string key;
  std::size_t n = 0;
  if (!(is >> key >> clock_) || key != "clock") bad_state("missing clock");
  if (!(is >> key >> next_id_) || key != "next-id") bad_state("missing next-id");
  if (!(is >> key >> n) || key != "workers") bad_state("missing workers");
  if (n != worker_free_at_.size()) {
    bad_state("snapshot has " + std::to_string(n) + " workers, executor has " +
              std::to_string(worker_free_at_.size()));
  }
  for (double& t : worker_free_at_) {
    if (!(is >> t)) bad_state("truncated worker free times");
  }
  if (!(is >> key >> n) || key != "durations") bad_state("missing durations");
  done_durations_.assign(n, 0.0);
  for (double& d : done_durations_) {
    if (!(is >> d)) bad_state("truncated durations");
  }
  if (!(is >> key >> n) || key != "pending-busy") {
    bad_state("missing pending-busy");
  }
  pending_busy_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    PendingBusy p{};
    if (!(is >> key >> p.start >> p.finish) || key != "busy") {
      bad_state("truncated pending-busy");
    }
    pending_busy_.push_back(p);
  }
  if (!(is >> key >> n) || key != "events") bad_state("missing events");
  events_ = decltype(events_)();
  for (std::size_t i = 0; i < n; ++i) {
    Event e{};
    int failed = 0;
    int timed_out = 0;
    int degraded = 0;
    std::string tag;
    if (!(is >> key >> e.finish_time >> e.id >> e.attempts >>
          e.output.objective >> e.output.train_seconds >> failed >>
          timed_out) ||
        key != "event") {
      bad_state("truncated events");
    }
    if (!v1 && !(is >> degraded >> e.output.final_world)) {
      bad_state("truncated events");
    }
    if (!(is >> tag)) bad_state("truncated events");
    e.output.failed = failed != 0;
    e.output.timed_out = timed_out != 0;
    e.output.degraded = degraded != 0;
    e.tag = decode_tag(tag);
    events_.push(std::move(e));
  }
  busy_intervals_.clear();  // resumed Gantt traces start at the resume point
  return true;
}

}  // namespace agebo::exec
