#include "exec/sim_executor.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace agebo::exec {

namespace {

// A hang runs this many times its nominal duration: effectively forever
// unless a timeout or the straggler rule reclaims the workers (an unkilled
// hang pushes its completion far past any campaign budget, which is the
// simulated analogue of stalling the machine).
constexpr double kHangFactor = 1e9;

}  // namespace

SimulatedExecutor::SimulatedExecutor(std::size_t n_workers,
                                     double job_overhead_seconds,
                                     RetryPolicy policy, FaultConfig faults)
    : job_overhead_(job_overhead_seconds),
      policy_(policy),
      injector_(faults),
      worker_free_at_(n_workers, 0.0) {
  if (n_workers == 0) throw std::invalid_argument("SimulatedExecutor: zero workers");
  if (job_overhead_seconds < 0.0) {
    throw std::invalid_argument("SimulatedExecutor: negative overhead");
  }
}

double SimulatedExecutor::attempt_limit(const JobSpec& spec) const {
  double limit = std::numeric_limits<double>::infinity();
  if (spec.timeout_seconds > 0.0) limit = spec.timeout_seconds;
  if (policy_.straggler_factor > 0.0 &&
      done_durations_.size() >= std::max<std::size_t>(1, policy_.straggler_min_samples)) {
    const std::size_t n = done_durations_.size();
    const double median =
        0.5 * (done_durations_[(n - 1) / 2] + done_durations_[n / 2]);
    limit = std::min(limit, policy_.straggler_factor * median);
  }
  return limit;
}

void SimulatedExecutor::record_duration(double seconds) {
  done_durations_.insert(
      std::lower_bound(done_durations_.begin(), done_durations_.end(), seconds),
      seconds);
}

std::uint64_t SimulatedExecutor::submit(EvalFn fn, const JobSpec& spec) {
  if (spec.width == 0 || spec.width > worker_free_at_.size()) {
    throw std::invalid_argument("SimulatedExecutor: bad gang width");
  }
  const std::uint64_t id = next_id_++;

  EvalOutput base;
  try {
    base = fn();
  } catch (...) {
    base.failed = true;
    base.objective = 0.0;
    base.train_seconds = 1.0;
  }
  if (base.train_seconds <= 0.0) base.train_seconds = 1e-3;

  // Resolve the attempt chain eagerly: each attempt claims its gang, pays
  // the launch overhead, and either completes, crashes, or is killed at
  // its deadline; failed attempts retry after exponential backoff until
  // the budget is exhausted.
  double t_ready = clock_;
  for (std::size_t attempt = 1;; ++attempt) {
    const FaultKind fault = injector_.draw(id, attempt);
    double duration = base.train_seconds;
    if (fault == FaultKind::kCrash) duration *= 0.5;
    if (fault == FaultKind::kHang) duration *= kHangFactor;
    if (fault == FaultKind::kSlow) duration *= injector_.config().slow_factor;

    const double limit = attempt_limit(spec);
    const bool killed = duration > limit;
    const double consumed = std::min(duration, limit);
    const bool attempt_failed =
        base.failed || fault == FaultKind::kCrash || fault == FaultKind::kHang ||
        killed;

    // Gang scheduling: claim the `width` earliest-free workers; the attempt
    // starts when the latest of them frees up (and not before t_ready), and
    // pays the launch overhead (idle from the utilization viewpoint) first.
    std::vector<std::size_t> order(worker_free_at_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(spec.width),
                      order.end(), [this](std::size_t a, std::size_t b) {
                        return worker_free_at_[a] < worker_free_at_[b];
                      });
    double gang_free = t_ready;
    for (std::size_t i = 0; i < spec.width; ++i) {
      gang_free = std::max(gang_free, worker_free_at_[order[i]]);
    }
    const double start = gang_free + job_overhead_;
    const double finish = start + consumed;
    for (std::size_t i = 0; i < spec.width; ++i) {
      worker_free_at_[order[i]] = finish;
      busy_intervals_.push_back(BusyInterval{id, order[i], start, finish});
    }

    if (!attempt_failed) {
      EvalOutput out = base;
      out.train_seconds = consumed;
      record_duration(consumed);
      events_.push(Event{finish, id, out, attempt, spec.tag});
      break;
    }
    if (attempt <= spec.max_retries) {
      t_ready = finish + backoff_delay(policy_, attempt);
      continue;
    }
    // Retries exhausted: report one failed completion.
    EvalOutput out;
    out.failed = true;
    out.timed_out = killed;
    out.objective = 0.0;
    out.train_seconds = consumed;
    events_.push(Event{finish, id, out, attempt, spec.tag});
    break;
  }
  return id;
}

std::vector<Finished> SimulatedExecutor::get_finished(bool block) {
  std::vector<Finished> out;
  if (events_.empty()) return out;

  if (!block && events_.top().finish_time > clock_) return out;

  // Advance to the next completion and drain everything finishing then.
  const double t = std::max(clock_, events_.top().finish_time);
  clock_ = t;
  while (!events_.empty() && events_.top().finish_time <= clock_) {
    const Event& e = events_.top();
    out.push_back(Finished{e.id, e.output, e.finish_time, e.attempts, e.tag});
    events_.pop();
  }
  return out;
}

Utilization SimulatedExecutor::utilization() const {
  Utilization u;
  for (const auto& interval : busy_intervals_) {
    u.busy_worker_seconds +=
        std::max(0.0, std::min(interval.finish, clock_) - interval.start);
  }
  u.elapsed_seconds = clock_;
  u.workers = worker_free_at_.size();
  return u;
}

void SimulatedExecutor::write_trace_csv(std::ostream& os) const {
  os << "job_id,worker,start,finish\n";
  for (const auto& interval : busy_intervals_) {
    os << interval.job_id << ',' << interval.worker << ',' << interval.start
       << ',' << interval.finish << '\n';
  }
}

}  // namespace agebo::exec
