file(REMOVE_RECURSE
  "CMakeFiles/transfer_warmstart.dir/transfer_warmstart.cpp.o"
  "CMakeFiles/transfer_warmstart.dir/transfer_warmstart.cpp.o.d"
  "transfer_warmstart"
  "transfer_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
