# Empty dependencies file for transfer_warmstart.
# This may be replaced when dependencies are built.
