# Empty dependencies file for autotuned_dp_training.
# This may be replaced when dependencies are built.
