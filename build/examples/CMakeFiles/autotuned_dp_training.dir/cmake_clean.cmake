file(REMOVE_RECURSE
  "CMakeFiles/autotuned_dp_training.dir/autotuned_dp_training.cpp.o"
  "CMakeFiles/autotuned_dp_training.dir/autotuned_dp_training.cpp.o.d"
  "autotuned_dp_training"
  "autotuned_dp_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotuned_dp_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
