file(REMOVE_RECURSE
  "CMakeFiles/ensemble_vs_nas.dir/ensemble_vs_nas.cpp.o"
  "CMakeFiles/ensemble_vs_nas.dir/ensemble_vs_nas.cpp.o.d"
  "ensemble_vs_nas"
  "ensemble_vs_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_vs_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
