# Empty dependencies file for ensemble_vs_nas.
# This may be replaced when dependencies are built.
