file(REMOVE_RECURSE
  "CMakeFiles/covertype_search.dir/covertype_search.cpp.o"
  "CMakeFiles/covertype_search.dir/covertype_search.cpp.o.d"
  "covertype_search"
  "covertype_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covertype_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
