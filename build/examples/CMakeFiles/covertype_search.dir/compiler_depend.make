# Empty compiler generated dependencies file for covertype_search.
# This may be replaced when dependencies are built.
