file(REMOVE_RECURSE
  "CMakeFiles/agebo_train.dir/agebo_train.cpp.o"
  "CMakeFiles/agebo_train.dir/agebo_train.cpp.o.d"
  "agebo_train"
  "agebo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
