# Empty dependencies file for agebo_train.
# This may be replaced when dependencies are built.
