file(REMOVE_RECURSE
  "CMakeFiles/agebo_campaign.dir/agebo_campaign.cpp.o"
  "CMakeFiles/agebo_campaign.dir/agebo_campaign.cpp.o.d"
  "agebo_campaign"
  "agebo_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
