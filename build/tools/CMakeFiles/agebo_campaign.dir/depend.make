# Empty dependencies file for agebo_campaign.
# This may be replaced when dependencies are built.
