# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_dp[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_bo[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")
include("/root/repo/build/tests/test_extensions3[1]_include.cmake")
include("/root/repo/build/tests/test_extensions4[1]_include.cmake")
include("/root/repo/build/tests/test_extensions5[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
