
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/agebo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/agebo_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/agebo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/agebo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/agebo_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/agebo_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/agebo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agebo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/agebo_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
