file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_static_dp.dir/bench_table1_static_dp.cpp.o"
  "CMakeFiles/bench_table1_static_dp.dir/bench_table1_static_dp.cpp.o.d"
  "bench_table1_static_dp"
  "bench_table1_static_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_static_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
