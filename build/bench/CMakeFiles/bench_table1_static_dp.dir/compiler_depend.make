# Empty compiler generated dependencies file for bench_table1_static_dp.
# This may be replaced when dependencies are built.
