file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kappa.dir/bench_fig8_kappa.cpp.o"
  "CMakeFiles/bench_fig8_kappa.dir/bench_fig8_kappa.cpp.o.d"
  "bench_fig8_kappa"
  "bench_fig8_kappa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kappa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
