# Empty dependencies file for bench_fig8_kappa.
# This may be replaced when dependencies are built.
