file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_four_datasets.dir/bench_fig6_four_datasets.cpp.o"
  "CMakeFiles/bench_fig6_four_datasets.dir/bench_fig6_four_datasets.cpp.o.d"
  "bench_fig6_four_datasets"
  "bench_fig6_four_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_four_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
