# Empty compiler generated dependencies file for bench_fig3_age_trajectories.
# This may be replaced when dependencies are built.
