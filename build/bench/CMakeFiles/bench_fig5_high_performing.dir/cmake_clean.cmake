file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_high_performing.dir/bench_fig5_high_performing.cpp.o"
  "CMakeFiles/bench_fig5_high_performing.dir/bench_fig5_high_performing.cpp.o.d"
  "bench_fig5_high_performing"
  "bench_fig5_high_performing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_high_performing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
