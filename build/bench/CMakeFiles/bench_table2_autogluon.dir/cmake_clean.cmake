file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_autogluon.dir/bench_table2_autogluon.cpp.o"
  "CMakeFiles/bench_table2_autogluon.dir/bench_table2_autogluon.cpp.o.d"
  "bench_table2_autogluon"
  "bench_table2_autogluon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_autogluon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
