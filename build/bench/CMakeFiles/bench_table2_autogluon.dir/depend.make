# Empty dependencies file for bench_table2_autogluon.
# This may be replaced when dependencies are built.
