file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_best_hps.dir/bench_table3_best_hps.cpp.o"
  "CMakeFiles/bench_table3_best_hps.dir/bench_table3_best_hps.cpp.o.d"
  "bench_table3_best_hps"
  "bench_table3_best_hps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_best_hps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
