# Empty compiler generated dependencies file for bench_table3_best_hps.
# This may be replaced when dependencies are built.
