# Empty dependencies file for bench_fig7_pca.
# This may be replaced when dependencies are built.
