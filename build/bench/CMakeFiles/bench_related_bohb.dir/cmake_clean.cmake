file(REMOVE_RECURSE
  "CMakeFiles/bench_related_bohb.dir/bench_related_bohb.cpp.o"
  "CMakeFiles/bench_related_bohb.dir/bench_related_bohb.cpp.o.d"
  "bench_related_bohb"
  "bench_related_bohb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_bohb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
