# Empty dependencies file for bench_related_bohb.
# This may be replaced when dependencies are built.
