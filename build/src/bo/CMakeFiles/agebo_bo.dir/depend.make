# Empty dependencies file for agebo_bo.
# This may be replaced when dependencies are built.
