file(REMOVE_RECURSE
  "CMakeFiles/agebo_bo.dir/optimizer.cpp.o"
  "CMakeFiles/agebo_bo.dir/optimizer.cpp.o.d"
  "CMakeFiles/agebo_bo.dir/param_space.cpp.o"
  "CMakeFiles/agebo_bo.dir/param_space.cpp.o.d"
  "libagebo_bo.a"
  "libagebo_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
