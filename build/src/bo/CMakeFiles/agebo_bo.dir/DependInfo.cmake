
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/optimizer.cpp" "src/bo/CMakeFiles/agebo_bo.dir/optimizer.cpp.o" "gcc" "src/bo/CMakeFiles/agebo_bo.dir/optimizer.cpp.o.d"
  "/root/repo/src/bo/param_space.cpp" "src/bo/CMakeFiles/agebo_bo.dir/param_space.cpp.o" "gcc" "src/bo/CMakeFiles/agebo_bo.dir/param_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/agebo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
