file(REMOVE_RECURSE
  "libagebo_bo.a"
)
