file(REMOVE_RECURSE
  "libagebo_data.a"
)
