file(REMOVE_RECURSE
  "CMakeFiles/agebo_data.dir/arff.cpp.o"
  "CMakeFiles/agebo_data.dir/arff.cpp.o.d"
  "CMakeFiles/agebo_data.dir/csv.cpp.o"
  "CMakeFiles/agebo_data.dir/csv.cpp.o.d"
  "CMakeFiles/agebo_data.dir/dataset.cpp.o"
  "CMakeFiles/agebo_data.dir/dataset.cpp.o.d"
  "CMakeFiles/agebo_data.dir/encoding.cpp.o"
  "CMakeFiles/agebo_data.dir/encoding.cpp.o.d"
  "CMakeFiles/agebo_data.dir/scaler.cpp.o"
  "CMakeFiles/agebo_data.dir/scaler.cpp.o.d"
  "CMakeFiles/agebo_data.dir/synthetic.cpp.o"
  "CMakeFiles/agebo_data.dir/synthetic.cpp.o.d"
  "libagebo_data.a"
  "libagebo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
