# Empty dependencies file for agebo_data.
# This may be replaced when dependencies are built.
