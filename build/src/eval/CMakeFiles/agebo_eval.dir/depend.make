# Empty dependencies file for agebo_eval.
# This may be replaced when dependencies are built.
