file(REMOVE_RECURSE
  "libagebo_eval.a"
)
