file(REMOVE_RECURSE
  "CMakeFiles/agebo_eval.dir/evaluation.cpp.o"
  "CMakeFiles/agebo_eval.dir/evaluation.cpp.o.d"
  "CMakeFiles/agebo_eval.dir/surrogate.cpp.o"
  "CMakeFiles/agebo_eval.dir/surrogate.cpp.o.d"
  "CMakeFiles/agebo_eval.dir/training_eval.cpp.o"
  "CMakeFiles/agebo_eval.dir/training_eval.cpp.o.d"
  "libagebo_eval.a"
  "libagebo_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
