# Empty dependencies file for agebo_common.
# This may be replaced when dependencies are built.
