file(REMOVE_RECURSE
  "libagebo_common.a"
)
