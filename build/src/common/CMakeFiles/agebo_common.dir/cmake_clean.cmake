file(REMOVE_RECURSE
  "CMakeFiles/agebo_common.dir/matrix.cpp.o"
  "CMakeFiles/agebo_common.dir/matrix.cpp.o.d"
  "CMakeFiles/agebo_common.dir/pca.cpp.o"
  "CMakeFiles/agebo_common.dir/pca.cpp.o.d"
  "CMakeFiles/agebo_common.dir/rng.cpp.o"
  "CMakeFiles/agebo_common.dir/rng.cpp.o.d"
  "CMakeFiles/agebo_common.dir/stats.cpp.o"
  "CMakeFiles/agebo_common.dir/stats.cpp.o.d"
  "CMakeFiles/agebo_common.dir/table.cpp.o"
  "CMakeFiles/agebo_common.dir/table.cpp.o.d"
  "libagebo_common.a"
  "libagebo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
