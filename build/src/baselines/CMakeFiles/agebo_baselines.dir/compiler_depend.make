# Empty compiler generated dependencies file for agebo_baselines.
# This may be replaced when dependencies are built.
