file(REMOVE_RECURSE
  "CMakeFiles/agebo_baselines.dir/auto_ensemble.cpp.o"
  "CMakeFiles/agebo_baselines.dir/auto_ensemble.cpp.o.d"
  "CMakeFiles/agebo_baselines.dir/auto_pytorch_like.cpp.o"
  "CMakeFiles/agebo_baselines.dir/auto_pytorch_like.cpp.o.d"
  "libagebo_baselines.a"
  "libagebo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
