file(REMOVE_RECURSE
  "libagebo_baselines.a"
)
