# Empty compiler generated dependencies file for agebo_core.
# This may be replaced when dependencies are built.
