file(REMOVE_RECURSE
  "libagebo_core.a"
)
