
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/agebo_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/history_io.cpp" "src/core/CMakeFiles/agebo_core.dir/history_io.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/history_io.cpp.o.d"
  "/root/repo/src/core/hp_analysis.cpp" "src/core/CMakeFiles/agebo_core.dir/hp_analysis.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/hp_analysis.cpp.o.d"
  "/root/repo/src/core/repeat.cpp" "src/core/CMakeFiles/agebo_core.dir/repeat.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/repeat.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/agebo_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/search.cpp.o.d"
  "/root/repo/src/core/sha_search.cpp" "src/core/CMakeFiles/agebo_core.dir/sha_search.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/sha_search.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "src/core/CMakeFiles/agebo_core.dir/variants.cpp.o" "gcc" "src/core/CMakeFiles/agebo_core.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nas/CMakeFiles/agebo_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/agebo_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/agebo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/agebo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/agebo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/agebo_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/agebo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
