file(REMOVE_RECURSE
  "CMakeFiles/agebo_core.dir/analysis.cpp.o"
  "CMakeFiles/agebo_core.dir/analysis.cpp.o.d"
  "CMakeFiles/agebo_core.dir/history_io.cpp.o"
  "CMakeFiles/agebo_core.dir/history_io.cpp.o.d"
  "CMakeFiles/agebo_core.dir/hp_analysis.cpp.o"
  "CMakeFiles/agebo_core.dir/hp_analysis.cpp.o.d"
  "CMakeFiles/agebo_core.dir/repeat.cpp.o"
  "CMakeFiles/agebo_core.dir/repeat.cpp.o.d"
  "CMakeFiles/agebo_core.dir/search.cpp.o"
  "CMakeFiles/agebo_core.dir/search.cpp.o.d"
  "CMakeFiles/agebo_core.dir/sha_search.cpp.o"
  "CMakeFiles/agebo_core.dir/sha_search.cpp.o.d"
  "CMakeFiles/agebo_core.dir/variants.cpp.o"
  "CMakeFiles/agebo_core.dir/variants.cpp.o.d"
  "libagebo_core.a"
  "libagebo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
