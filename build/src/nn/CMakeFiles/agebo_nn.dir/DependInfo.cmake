
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/agebo_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/agebo_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/agebo_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/graph_net.cpp" "src/nn/CMakeFiles/agebo_nn.dir/graph_net.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/graph_net.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/agebo_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/nn/CMakeFiles/agebo_nn.dir/schedule.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/schedule.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/agebo_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/agebo_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/agebo_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/agebo_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
