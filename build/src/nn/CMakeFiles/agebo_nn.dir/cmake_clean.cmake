file(REMOVE_RECURSE
  "CMakeFiles/agebo_nn.dir/activation.cpp.o"
  "CMakeFiles/agebo_nn.dir/activation.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/adam.cpp.o"
  "CMakeFiles/agebo_nn.dir/adam.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/dense.cpp.o"
  "CMakeFiles/agebo_nn.dir/dense.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/graph_net.cpp.o"
  "CMakeFiles/agebo_nn.dir/graph_net.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/loss.cpp.o"
  "CMakeFiles/agebo_nn.dir/loss.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/schedule.cpp.o"
  "CMakeFiles/agebo_nn.dir/schedule.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/serialize.cpp.o"
  "CMakeFiles/agebo_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/tensor.cpp.o"
  "CMakeFiles/agebo_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/agebo_nn.dir/trainer.cpp.o"
  "CMakeFiles/agebo_nn.dir/trainer.cpp.o.d"
  "libagebo_nn.a"
  "libagebo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
