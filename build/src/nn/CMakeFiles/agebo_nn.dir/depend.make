# Empty dependencies file for agebo_nn.
# This may be replaced when dependencies are built.
