file(REMOVE_RECURSE
  "libagebo_nn.a"
)
