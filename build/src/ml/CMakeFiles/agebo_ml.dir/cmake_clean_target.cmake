file(REMOVE_RECURSE
  "libagebo_ml.a"
)
