file(REMOVE_RECURSE
  "CMakeFiles/agebo_ml.dir/boosting.cpp.o"
  "CMakeFiles/agebo_ml.dir/boosting.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/ensemble_selection.cpp.o"
  "CMakeFiles/agebo_ml.dir/ensemble_selection.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/forest.cpp.o"
  "CMakeFiles/agebo_ml.dir/forest.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/knn.cpp.o"
  "CMakeFiles/agebo_ml.dir/knn.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/linear.cpp.o"
  "CMakeFiles/agebo_ml.dir/linear.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/metrics.cpp.o"
  "CMakeFiles/agebo_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/stacking.cpp.o"
  "CMakeFiles/agebo_ml.dir/stacking.cpp.o.d"
  "CMakeFiles/agebo_ml.dir/tree.cpp.o"
  "CMakeFiles/agebo_ml.dir/tree.cpp.o.d"
  "libagebo_ml.a"
  "libagebo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
