
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/boosting.cpp" "src/ml/CMakeFiles/agebo_ml.dir/boosting.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/boosting.cpp.o.d"
  "/root/repo/src/ml/ensemble_selection.cpp" "src/ml/CMakeFiles/agebo_ml.dir/ensemble_selection.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/ensemble_selection.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/agebo_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/agebo_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/agebo_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/agebo_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/stacking.cpp" "src/ml/CMakeFiles/agebo_ml.dir/stacking.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/stacking.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/agebo_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/agebo_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
