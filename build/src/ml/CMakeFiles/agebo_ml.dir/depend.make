# Empty dependencies file for agebo_ml.
# This may be replaced when dependencies are built.
