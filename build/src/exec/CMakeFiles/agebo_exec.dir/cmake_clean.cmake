file(REMOVE_RECURSE
  "CMakeFiles/agebo_exec.dir/live_executor.cpp.o"
  "CMakeFiles/agebo_exec.dir/live_executor.cpp.o.d"
  "CMakeFiles/agebo_exec.dir/sim_executor.cpp.o"
  "CMakeFiles/agebo_exec.dir/sim_executor.cpp.o.d"
  "CMakeFiles/agebo_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/agebo_exec.dir/thread_pool.cpp.o.d"
  "libagebo_exec.a"
  "libagebo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
