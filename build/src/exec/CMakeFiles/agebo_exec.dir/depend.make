# Empty dependencies file for agebo_exec.
# This may be replaced when dependencies are built.
