file(REMOVE_RECURSE
  "libagebo_exec.a"
)
