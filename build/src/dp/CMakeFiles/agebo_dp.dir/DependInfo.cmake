
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/allreduce.cpp" "src/dp/CMakeFiles/agebo_dp.dir/allreduce.cpp.o" "gcc" "src/dp/CMakeFiles/agebo_dp.dir/allreduce.cpp.o.d"
  "/root/repo/src/dp/data_parallel.cpp" "src/dp/CMakeFiles/agebo_dp.dir/data_parallel.cpp.o" "gcc" "src/dp/CMakeFiles/agebo_dp.dir/data_parallel.cpp.o.d"
  "/root/repo/src/dp/perf_model.cpp" "src/dp/CMakeFiles/agebo_dp.dir/perf_model.cpp.o" "gcc" "src/dp/CMakeFiles/agebo_dp.dir/perf_model.cpp.o.d"
  "/root/repo/src/dp/thread_team.cpp" "src/dp/CMakeFiles/agebo_dp.dir/thread_team.cpp.o" "gcc" "src/dp/CMakeFiles/agebo_dp.dir/thread_team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/agebo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/agebo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/agebo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
