# Empty dependencies file for agebo_dp.
# This may be replaced when dependencies are built.
