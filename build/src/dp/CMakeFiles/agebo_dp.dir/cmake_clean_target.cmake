file(REMOVE_RECURSE
  "libagebo_dp.a"
)
