file(REMOVE_RECURSE
  "CMakeFiles/agebo_dp.dir/allreduce.cpp.o"
  "CMakeFiles/agebo_dp.dir/allreduce.cpp.o.d"
  "CMakeFiles/agebo_dp.dir/data_parallel.cpp.o"
  "CMakeFiles/agebo_dp.dir/data_parallel.cpp.o.d"
  "CMakeFiles/agebo_dp.dir/perf_model.cpp.o"
  "CMakeFiles/agebo_dp.dir/perf_model.cpp.o.d"
  "CMakeFiles/agebo_dp.dir/thread_team.cpp.o"
  "CMakeFiles/agebo_dp.dir/thread_team.cpp.o.d"
  "libagebo_dp.a"
  "libagebo_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
