file(REMOVE_RECURSE
  "libagebo_nas.a"
)
