# Empty compiler generated dependencies file for agebo_nas.
# This may be replaced when dependencies are built.
