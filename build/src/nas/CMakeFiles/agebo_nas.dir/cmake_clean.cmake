file(REMOVE_RECURSE
  "CMakeFiles/agebo_nas.dir/arch_metrics.cpp.o"
  "CMakeFiles/agebo_nas.dir/arch_metrics.cpp.o.d"
  "CMakeFiles/agebo_nas.dir/search_space.cpp.o"
  "CMakeFiles/agebo_nas.dir/search_space.cpp.o.d"
  "libagebo_nas.a"
  "libagebo_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agebo_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
